//! `EntryState` phase-transition conformance.
//!
//! The datastore's six-phase lifecycle lives in a private `phase:
//! AtomicU8` (crates/datastore/src/entry.rs). Every mutation of that
//! atomic — `compare_exchange` or `store` — is a protocol arc whose
//! (from, to, success-ordering) triple the loom models were written
//! against. This rule extracts every such site from any file declaring
//! a `phase: AtomicU8` field and checks the observed set against the
//! declared table in `docs/phase-transitions.md`
//! (```` ```phase-transitions ```` block), in both directions:
//!
//! * an arc in code but not in the table → **undeclared transition**
//!   (a new arc, like PR 9's abort path, must be spec'd first);
//! * a table row matching no code → **stale spec**;
//! * additionally, every function in the table must name a loom model
//!   (`model <fn> <loom-fn>…`) that exists in `tests/loom.rs`, calls
//!   `loom::model`, and invokes the function — so the declared table
//!   stays cross-validated against what the models actually exercise.
//!
//! CAS `from`/`to` operands are read as `Phase::X as u8` or as a
//! variable resolved through a `for v in [Phase::A, Phase::B]` loop in
//! the same function (the shape `publish` uses); anything else is
//! reported as unresolvable rather than guessed. Plain `load`s and
//! `AtomicU8::new` constructors are reads/initialization, not arcs, and
//! are out of scope.

use crate::diag::{fingerprint, Diagnostic};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{skip_group, SourceFile};

/// One declared arc. `from` is `*` for unconditional `store`s.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    pub line: usize,
    pub func: String,
    pub kind: String, // "cas" | "store"
    pub from: String,
    pub to: String,
    pub ordering: String,
}

/// The declared table plus the model cross-references.
#[derive(Clone, Debug, Default)]
pub struct PhaseSpec {
    pub transitions: Vec<Transition>,
    /// (spec line, entry fn, loom model fns).
    pub models: Vec<(usize, String, Vec<String>)>,
}

impl PhaseSpec {
    /// Parses the ```` ```phase-transitions ```` block:
    /// `transition <fn> cas <from> <to> <ordering>`,
    /// `transition <fn> store * <to> <ordering>`,
    /// `model <fn> <loom-fn> [loom-fn …]`, `#` comments.
    pub fn parse(block: &[(usize, String)]) -> Result<PhaseSpec, String> {
        let mut spec = PhaseSpec::default();
        for (lineno, line) in block {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let w: Vec<&str> = line.split_whitespace().collect();
            match w.first() {
                Some(&"transition") if w.len() == 6 && (w[2] == "cas" || w[2] == "store") => {
                    if w[2] == "store" && w[3] != "*" {
                        return Err(format!(
                            "phase spec line {lineno}: store arcs have no from — use `*`"
                        ));
                    }
                    let t = Transition {
                        line: *lineno,
                        func: w[1].into(),
                        kind: w[2].into(),
                        from: w[3].into(),
                        to: w[4].into(),
                        ordering: w[5].into(),
                    };
                    if spec.transitions.iter().any(|x| x.key() == t.key()) {
                        return Err(format!("phase spec line {lineno}: duplicate arc"));
                    }
                    spec.transitions.push(t);
                }
                Some(&"model") if w.len() >= 3 => {
                    spec.models.push((
                        *lineno,
                        w[1].to_string(),
                        w[2..].iter().map(|s| s.to_string()).collect(),
                    ));
                }
                _ => {
                    return Err(format!(
                        "phase spec line {lineno}: expected `transition <fn> cas|store <from> <to> \
                         <ordering>` or `model <fn> <loom-fn>…`, got {line:?}"
                    ))
                }
            }
        }
        if spec.transitions.is_empty() {
            return Err("phase spec declares no transitions".into());
        }
        Ok(spec)
    }
}

impl Transition {
    fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.func, self.kind, self.from, self.to, self.ordering
        )
    }
}

/// An observed phase mutation in code.
#[derive(Clone, Debug)]
struct Observed {
    func: String,
    kind: String,
    from: String,
    to: String,
    ordering: String,
    file: usize,
    line: usize,
}

impl Observed {
    fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.func, self.kind, self.from, self.to, self.ordering
        )
    }
}

/// Splits the tokens of a `(...)` group (given the opener index) into
/// top-level comma-separated argument slices.
fn call_args(toks: &[Tok], open: usize) -> Vec<Vec<Tok>> {
    let end = skip_group(toks, open) - 1; // index of ')'
    let mut args = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in &toks[open + 1..end] {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                args.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// Resolves a phase operand to variant names. Accepts `Phase::X`
/// (optionally `as u8`) or a lone variable driven by a
/// `for v in [Phase::A, Phase::B]` loop inside `body`.
fn resolve_operand(arg: &[Tok], body: &[Tok]) -> Result<Vec<String>, String> {
    let mut a = arg;
    // Strip a trailing `as u8`.
    if a.len() >= 2 && a[a.len() - 2].is_ident("as") {
        a = &a[..a.len() - 2];
    }
    if a.len() == 4 && a[0].is_ident("Phase") && a[1].is_punct(':') && a[2].is_punct(':') {
        return Ok(vec![a[3].text.clone()]);
    }
    if a.len() == 1 && a[0].kind == TokKind::Ident {
        let var = &a[0].text;
        // `for <var> in [ … ]`
        let mut i = 0usize;
        while i + 3 < body.len() {
            if body[i].is_ident("for")
                && body[i + 1].is_ident(var)
                && body[i + 2].is_ident("in")
                && body[i + 3].is_punct('[')
            {
                let elems = call_args(body, i + 3);
                let mut out = Vec::new();
                for e in &elems {
                    out.extend(resolve_operand(e, body)?);
                }
                if out.is_empty() {
                    return Err(format!("loop over empty array for `{var}`"));
                }
                return Ok(out);
            }
            i += 1;
        }
        return Err(format!("cannot resolve phase operand `{var}`"));
    }
    Err(format!(
        "unrecognized phase operand shape `{}`",
        a.iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    ))
}

/// The last identifier of an ordering argument (`Ordering::SeqCst` →
/// `SeqCst`).
fn ordering_of(arg: &[Tok]) -> Option<String> {
    arg.iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// True when the file declares a `phase: AtomicU8` field — the scope
/// gate for this rule.
fn has_phase_field(toks: &[Tok]) -> bool {
    toks.windows(3)
        .any(|w| w[0].is_ident("phase") && w[1].is_punct(':') && w[2].is_ident("AtomicU8"))
}

/// Runs the conformance check. `spec_rel` is the workspace-relative
/// path of the spec document (diagnostics for stale rows point there);
/// `loom` is `tests/loom.rs` when present.
pub fn check(
    spec: &PhaseSpec,
    spec_rel: &str,
    files: &[SourceFile],
    loom: Option<&SourceFile>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut observed: Vec<Observed> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        let toks = &f.lexed.tokens;
        if !has_phase_field(toks) {
            continue;
        }
        let items = lexer::fn_items(toks);
        for item in &items {
            if f.in_test(item.line) {
                continue;
            }
            let (bs, be) = item.body;
            let body = &toks[bs..=be.min(toks.len() - 1)];
            let mut i = 0usize;
            while i + 4 < body.len() {
                let is_site = body[i].is_punct('.')
                    && body[i + 1].is_ident("phase")
                    && body[i + 2].is_punct('.')
                    && (body[i + 3].is_ident("compare_exchange") || body[i + 3].is_ident("store"))
                    && body[i + 4].is_punct('(');
                if !is_site {
                    i += 1;
                    continue;
                }
                let kind = if body[i + 3].is_ident("compare_exchange") {
                    "cas"
                } else {
                    "store"
                };
                let line = body[i + 3].line;
                let args = call_args(body, i + 4);
                let mut bad = |msg: String, key: &str| {
                    out.push(Diagnostic {
                        rule: "phase-transition",
                        file: f.rel.clone(),
                        line,
                        message: msg,
                        fingerprint: fingerprint("phase-transition", &f.rel, key),
                    });
                };
                let expect = if kind == "cas" { 4 } else { 2 };
                if args.len() != expect {
                    bad(
                        format!(
                            "`{}`: phase {kind} with {} args (expected {expect}) — cannot check",
                            item.name,
                            args.len()
                        ),
                        &format!("arity:{}|{kind}", item.name),
                    );
                    i += 5;
                    continue;
                }
                let (froms, tos, ord) = if kind == "cas" {
                    (
                        resolve_operand(&args[0], body),
                        resolve_operand(&args[1], body),
                        ordering_of(&args[2]),
                    )
                } else {
                    (
                        Ok(vec!["*".to_string()]),
                        resolve_operand(&args[0], body),
                        ordering_of(&args[1]),
                    )
                };
                match (froms, tos, ord) {
                    (Ok(froms), Ok(tos), Some(ord)) => {
                        for from in &froms {
                            for to in &tos {
                                observed.push(Observed {
                                    func: item.name.clone(),
                                    kind: kind.into(),
                                    from: from.clone(),
                                    to: to.clone(),
                                    ordering: ord.clone(),
                                    file: fi,
                                    line,
                                });
                            }
                        }
                    }
                    (f1, f2, _ord) => {
                        let why = f1
                            .err()
                            .or(f2.err())
                            .unwrap_or_else(|| "missing ordering argument".into());
                        bad(
                            format!("`{}`: unresolvable phase {kind} operand: {why}", item.name),
                            &format!("operand:{}|{kind}", item.name),
                        );
                    }
                }
                i += 5;
            }
        }
    }

    // Direction 1: every observed arc must be declared.
    for o in &observed {
        if !spec.transitions.iter().any(|t| t.key() == o.key()) {
            let f = &files[o.file];
            out.push(Diagnostic {
                rule: "phase-transition",
                file: f.rel.clone(),
                line: o.line,
                message: format!(
                    "undeclared phase transition in `{}`: {} {} -> {} ({}) — declare it in \
                     {spec_rel} (and cover it with a loom model) first",
                    o.func, o.kind, o.from, o.to, o.ordering
                ),
                fingerprint: fingerprint(
                    "phase-transition",
                    &f.rel,
                    &format!("undeclared:{}", o.key()),
                ),
            });
        }
    }

    // Direction 2: every declared arc must exist in code.
    for t in &spec.transitions {
        if !observed.iter().any(|o| o.key() == t.key()) {
            out.push(Diagnostic {
                rule: "phase-transition",
                file: spec_rel.to_string(),
                line: t.line,
                message: format!(
                    "stale spec row: no code performs `{}` {} {} -> {} ({})",
                    t.func, t.kind, t.from, t.to, t.ordering
                ),
                fingerprint: fingerprint(
                    "phase-transition",
                    spec_rel,
                    &format!("stale:{}", t.key()),
                ),
            });
        }
    }

    // Direction 3: loom cross-validation.
    let loom_fns: Vec<(String, bool, Vec<String>)> = loom
        .map(|lf| {
            let toks = &lf.lexed.tokens;
            lexer::fn_items(toks)
                .iter()
                .map(|item| {
                    let body = &toks[item.body.0..=item.body.1.min(toks.len() - 1)];
                    let is_model = body.windows(4).any(|w| {
                        w[0].is_ident("loom")
                            && w[1].is_punct(':')
                            && w[2].is_punct(':')
                            && w[3].is_ident("model")
                    });
                    let called: Vec<String> = body
                        .windows(3)
                        .filter(|w| {
                            w[0].is_punct('.') && w[1].kind == TokKind::Ident && w[2].is_punct('(')
                        })
                        .map(|w| w[1].text.clone())
                        .collect();
                    (item.name.clone(), is_model, called)
                })
                .collect()
        })
        .unwrap_or_default();
    let mut spec_funcs: Vec<&str> = spec.transitions.iter().map(|t| t.func.as_str()).collect();
    spec_funcs.sort_unstable();
    spec_funcs.dedup();
    for func in spec_funcs {
        let Some((mline, _, models)) = spec.models.iter().find(|(_, f, _)| f == func) else {
            out.push(Diagnostic {
                rule: "phase-transition",
                file: spec_rel.to_string(),
                line: 1,
                message: format!(
                    "`{func}` mutates the phase but no `model {func} <loom-fn>` row names the \
                     loom model that exercises it"
                ),
                fingerprint: fingerprint(
                    "phase-transition",
                    spec_rel,
                    &format!("unmodeled:{func}"),
                ),
            });
            continue;
        };
        for m in models {
            let found = loom_fns.iter().find(|(name, _, _)| name == m);
            let ok = match found {
                Some((_, is_model, called)) => *is_model && called.iter().any(|c| c == func),
                None => false,
            };
            if !ok {
                out.push(Diagnostic {
                    rule: "phase-transition",
                    file: spec_rel.to_string(),
                    line: *mline,
                    message: format!(
                        "spec claims loom model `{m}` covers `{func}`, but tests/loom.rs has no \
                         such `loom::model` fn calling `.{func}(…)`"
                    ),
                    fingerprint: fingerprint(
                        "phase-transition",
                        spec_rel,
                        &format!("model:{m}|{func}"),
                    ),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
transition publish cas Accumulating Full SeqCst
transition force_swap_out store * SwappedOut Release
model publish m_publish
model force_swap_out m_swap
";

    fn spec() -> PhaseSpec {
        let block: Vec<(usize, String)> = SPEC
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.to_string()))
            .collect();
        PhaseSpec::parse(&block).unwrap()
    }

    const LOOM: &str = "\
fn m_publish() { loom::model(|| { e.publish(); }); }
fn m_swap() { loom::model(|| { e.force_swap_out(); }); }
";

    const CODE: &str = "\
struct S { phase: AtomicU8 }
impl S {
 fn publish(&self) -> bool {
  self.phase.compare_exchange(Phase::Accumulating as u8, Phase::Full as u8, Ordering::SeqCst, Ordering::Relaxed).is_ok()
 }
 fn force_swap_out(&self) {
  self.phase.store(Phase::SwappedOut as u8, Ordering::Release);
 }
}
";

    fn run(code: &str) -> Vec<Diagnostic> {
        check(
            &spec(),
            "docs/phase-transitions.md",
            &[SourceFile::new("entry.rs", code)],
            Some(&SourceFile::new("tests/loom.rs", LOOM)),
        )
    }

    #[test]
    fn conforming_code_is_clean() {
        let v = run(CODE);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undeclared_arc_fires() {
        let code = CODE.replace("Phase::SwappedOut as u8", "Phase::Full as u8");
        let v = run(&code);
        // One undeclared arc (store Full) + the declared SwappedOut row is stale.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|d| d.message.contains("undeclared phase transition")));
        assert!(v.iter().any(|d| d.message.contains("stale spec row")));
    }

    #[test]
    fn wrong_ordering_fires() {
        let code = CODE.replace("Ordering::SeqCst", "Ordering::AcqRel");
        let v = run(&code);
        assert!(v.iter().any(|d| d.message.contains("AcqRel")), "{v:?}");
    }

    #[test]
    fn loop_variable_operand_resolves() {
        let code = "\
struct S { phase: AtomicU8 }
impl S {
 fn publish(&self) -> bool {
  for from in [Phase::Accumulating, Phase::Subscribable] {
   if self.phase.compare_exchange(from as u8, Phase::Full as u8, Ordering::SeqCst, Ordering::Relaxed).is_ok() { return true; }
  }
  false
 }
 fn force_swap_out(&self) { self.phase.store(Phase::SwappedOut as u8, Ordering::Release); }
}
";
        let v = run(code);
        // Subscribable -> Full is observed but not declared in the tiny
        // test spec; the Accumulating arc matches.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Subscribable"));
    }

    #[test]
    fn unresolvable_operand_fires() {
        let code = "\
struct S { phase: AtomicU8 }
impl S {
 fn publish(&self, x: u8) { self.phase.store(x, Ordering::Release); }
}
";
        let v = run(code);
        assert!(
            v.iter().any(|d| d.message.contains("unresolvable")),
            "{v:?}"
        );
    }

    #[test]
    fn model_must_exist_and_call_the_fn() {
        let loom = SourceFile::new("tests/loom.rs", "fn m_publish() { loom::model(|| {}); }\n");
        let v = check(
            &spec(),
            "docs/phase-transitions.md",
            &[SourceFile::new("entry.rs", CODE)],
            Some(&loom),
        );
        // m_publish no longer calls .publish(); m_swap is missing entirely.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|d| d.message.contains("loom")), "{v:?}");
    }

    #[test]
    fn files_without_phase_field_are_out_of_scope() {
        let v = check(
            &spec(),
            "docs/phase-transitions.md",
            &[SourceFile::new(
                "other.rs",
                "fn f(a: &AtomicU8) { a.store(3, Ordering::Relaxed); }",
            )],
            Some(&SourceFile::new("tests/loom.rs", LOOM)),
        );
        // Only the stale-spec rows fire (no phase field anywhere).
        assert!(v.iter().all(|d| d.message.contains("stale")), "{v:?}");
    }
}
