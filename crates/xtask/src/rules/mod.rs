//! Analysis rules. Shared source-file representation and helpers;
//! one module per rule family.
//!
//! * [`legacy`] — the five line-oriented determinism/safety rules,
//!   ported onto the lexer's sanitized lines so patterns inside string
//!   literals and comments no longer fire.
//! * [`lock_order`] — static lock-acquisition-order analysis against
//!   the declared hierarchy in `docs/lock-order.md`.
//! * [`phase`] — `EntryState` phase-transition conformance against the
//!   declared table in `docs/phase-transitions.md`, cross-validated
//!   against the loom models.
//! * [`event_parity`] — server/sim `EventKind` construction parity.

pub mod event_parity;
pub mod legacy;
pub mod lock_order;
pub mod phase;

use crate::lexer::{self, Lexed};

/// A lexed workspace source file, shared by every rule.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Original lines — used for `lint:allow` / `SAFETY:` markers,
    /// which live in comments and are blanked in the sanitized view.
    pub raw_lines: Vec<String>,
    pub lexed: Lexed,
    /// 1-based line of the first `#[cfg(test)]`; everything at or after
    /// it is test code. `usize::MAX` when the file has no test module.
    pub test_boundary: usize,
}

impl SourceFile {
    pub fn new(rel: &str, content: &str) -> Self {
        let raw_lines: Vec<String> = content.lines().map(|l| l.to_string()).collect();
        let test_boundary = raw_lines
            .iter()
            .position(|l| l.trim() == "#[cfg(test)]")
            .map(|i| i + 1)
            .unwrap_or(usize::MAX);
        SourceFile {
            rel: rel.to_string(),
            raw_lines,
            lexed: lexer::lex(content),
            test_boundary,
        }
    }

    /// True when 1-based `line` is inside the trailing test module.
    pub fn in_test(&self, line: usize) -> bool {
        line >= self.test_boundary
    }

    /// True when `marker` appears on 1-based line `line` or within
    /// `window` raw lines above it (escape-hatch comments).
    pub fn marked(&self, line: usize, marker: &str, window: usize) -> bool {
        if line == 0 || self.raw_lines.is_empty() {
            return false;
        }
        let idx = (line - 1).min(self.raw_lines.len() - 1);
        let lo = idx.saturating_sub(window);
        self.raw_lines[lo..=idx].iter().any(|l| l.contains(marker))
    }
}

/// Skips a balanced `(…)`, `[…]`, or `{…}` group forward: `i` indexes
/// the opening token; returns the index just past the matching closer.
pub fn skip_group(tokens: &[lexer::Tok], i: usize) -> usize {
    let (open, close) = match tokens[i].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return i + 1,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skips a balanced group backward: `i` indexes the closing token;
/// returns the index of the matching opener.
pub fn skip_group_back(tokens: &[lexer::Tok], i: usize) -> usize {
    let (open, close) = match tokens[i].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return i,
    };
    let mut depth = 0i32;
    let mut j = i as isize;
    while j >= 0 {
        let t = &tokens[j as usize];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return j as usize;
            }
        }
        j -= 1;
    }
    0
}

/// Extracts a fenced code block tagged `tag` from a markdown document:
/// the lines between ```` ```<tag> ```` and the closing ```` ``` ````,
/// each paired with its 1-based line number in the document. This is
/// the machine-readable-spec convention used by `docs/lock-order.md`
/// and `docs/phase-transitions.md`.
pub fn fenced_block(md: &str, tag: &str) -> Result<Vec<(usize, String)>, String> {
    let fence = format!("```{tag}");
    let mut out = Vec::new();
    let mut inside = false;
    for (i, line) in md.lines().enumerate() {
        let t = line.trim();
        if !inside && t == fence {
            inside = true;
        } else if inside && t == "```" {
            return Ok(out);
        } else if inside {
            out.push((i + 1, line.to_string()));
        }
    }
    if inside {
        Err(format!("unterminated ```{tag} block"))
    } else {
        Err(format!("no ```{tag} block found"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_boundary_and_marked() {
        let f = SourceFile::new(
            "x.rs",
            "fn a() {}\n// lint:allow(x): why\nfn b() {}\n#[cfg(test)]\nmod t {}\n",
        );
        assert_eq!(f.test_boundary, 4);
        assert!(f.in_test(4) && f.in_test(5) && !f.in_test(3));
        assert!(f.marked(3, "lint:allow(x)", 3));
        assert!(!f.marked(1, "lint:allow(x)", 3));
    }

    #[test]
    fn fenced_block_extraction() {
        let md = "# Doc\n\n```lock-order\nclass a 10 a\n```\ntrailing\n";
        let b = fenced_block(md, "lock-order").unwrap();
        assert_eq!(b, vec![(4, "class a 10 a".to_string())]);
        assert!(fenced_block(md, "other").is_err());
    }

    #[test]
    fn group_skipping() {
        let lx = crate::lexer::lex("f(a, (b, c))[0] + g");
        let toks = &lx.tokens;
        let open = toks.iter().position(|t| t.is_punct('(')).unwrap();
        let past = skip_group(toks, open);
        assert!(toks[past].is_punct('['));
        let close = past - 1;
        assert_eq!(skip_group_back(toks, close), open);
    }
}
