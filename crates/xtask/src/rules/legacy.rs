//! The five original determinism/safety lints, ported onto the lexer's
//! sanitized line view.
//!
//! The rules keep their line-oriented shape (they reason about guard
//! extents and marker windows in terms of lines), but match against
//! [`SourceFile::lexed::code_lines`] — the source with comment text and
//! string/char-literal contents blanked — so a rule pattern that
//! appears inside a string literal or a comment can no longer fire.
//! Escape-hatch markers (`lint:allow(…)`, `lint:sorted:`, `SAFETY:`)
//! live in comments, so those are looked up on the *raw* lines.

use crate::diag::{fingerprint, Diagnostic};
use crate::rules::SourceFile;

/// Files on the deterministic surface: ranking decisions and
/// conformance-trace output. Iteration order here is observable in
/// golden traces, so rule `nondet-iter` applies.
pub const SURFACE_FILES: &[&str] = &[
    "crates/core/src/rank.rs",
    "crates/core/src/graph.rs",
    "crates/core/src/strategy.rs",
    "crates/obs/src/event.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/timeline.rs",
];

/// Files on the server hot path: the worker loop and the submit path.
/// Rules `hot-unwrap` and `guard-across-io` apply.
pub const HOT_PATH_FILES: &[&str] = &["crates/server/src/engine.rs", "crates/server/src/pages.rs"];

/// The sanctioned wall-clock origin — exempt from rule `wall-clock`.
pub const CLOCK_ORIGIN: &str = "crates/core/src/clock.rs";

/// Crates allowed to contain `unsafe` (and therefore exempt from the
/// `#![forbid(unsafe_code)]` requirement): only the storage layer's
/// AVX-512 page fill.
pub const UNSAFE_CRATES: &[&str] = &["crates/storage"];

/// Per-file lint configuration, derived from the workspace-relative
/// path (and constructed directly by the fixture tests).
#[derive(Clone, Copy, Default)]
pub struct FileCtx {
    pub surface: bool,
    pub hot_path: bool,
    pub clock_origin: bool,
}

impl FileCtx {
    pub fn for_path(rel: &str) -> Self {
        FileCtx {
            surface: SURFACE_FILES.contains(&rel),
            hot_path: HOT_PATH_FILES.contains(&rel),
            clock_origin: rel == CLOCK_ORIGIN,
        }
    }
}

/// Builds a diagnostic whose fingerprint keys on the sanitized line
/// *text*, not the line number — reordering unrelated code does not
/// change a finding's identity. Identical lines in one file are told
/// apart later by [`crate::diag::disambiguate`].
fn line_diag(
    file: &SourceFile,
    rule: &'static str,
    idx: usize,
    code: &str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line: idx + 1,
        message,
        fingerprint: fingerprint(rule, &file.rel, code.trim()),
    }
}

/// Runs the five ported rules on one file. `idx` below is 0-based;
/// diagnostics carry 1-based lines.
pub fn check_file(ctx: FileCtx, f: &SourceFile) -> Vec<Diagnostic> {
    let code_lines = &f.lexed.code_lines;
    let mut out = Vec::new();
    // Lines at or after the `#[cfg(test)]` boundary are test code:
    // hot-path panics there are fine, as is reading the real clock.
    let test_start = if f.test_boundary == usize::MAX {
        code_lines.len()
    } else {
        (f.test_boundary - 1).min(code_lines.len())
    };

    // ---- wall-clock ---------------------------------------------------
    if !ctx.clock_origin {
        for (i, code) in code_lines.iter().enumerate().take(test_start) {
            if (code.contains("Instant::now()") || code.contains("SystemTime::now()"))
                && !f.marked(i + 1, "lint:allow(wall-clock)", 3)
            {
                out.push(line_diag(
                    f,
                    "wall-clock",
                    i,
                    code,
                    "raw clock read; route through vmqs_core::clock (see clippy.toml)".into(),
                ));
            }
        }
    }

    // ---- nondet-iter --------------------------------------------------
    if ctx.surface {
        // Pass 1: names declared with a HashMap/HashSet type anywhere in
        // the file (fields and annotated locals).
        let mut hash_names: Vec<String> = Vec::new();
        for code in code_lines {
            let mut rest = code.as_str();
            while let Some(p) = rest.find("Hash") {
                let after = &rest[p..];
                if after.starts_with("HashMap<") || after.starts_with("HashSet<") {
                    let before = rest[..p].trim_end();
                    if let Some(b) = before.strip_suffix(':') {
                        let name: String = b
                            .trim_end()
                            .chars()
                            .rev()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect::<Vec<_>>()
                            .into_iter()
                            .rev()
                            .collect();
                        if !name.is_empty() && !hash_names.contains(&name) {
                            hash_names.push(name);
                        }
                    }
                }
                rest = &rest[p + 4..];
            }
        }
        // Pass 2: iteration over any such name.
        const ITER_CALLS: &[&str] = &[".iter()", ".keys()", ".values()", ".into_iter()", ".drain("];
        for (i, code) in code_lines.iter().enumerate().take(test_start) {
            for name in &hash_names {
                let method = ITER_CALLS
                    .iter()
                    .any(|c| code.contains(&format!("{name}{c}")));
                let for_loop = code.contains("for ")
                    && code
                        .find(" in ")
                        .is_some_and(|p| code[p + 4..].contains(name.as_str()));
                if (method || for_loop) && !f.marked(i + 1, "lint:sorted", 3) {
                    out.push(line_diag(
                        f,
                        "nondet-iter",
                        i,
                        code,
                        format!(
                            "iterating hash-ordered `{name}` on a deterministic surface; \
                             use BTreeMap/BTreeSet, sort first, or justify with `// lint:sorted:`"
                        ),
                    ));
                }
            }
        }
    }

    // ---- hot-unwrap ---------------------------------------------------
    if ctx.hot_path {
        for (i, code) in code_lines.iter().enumerate().take(test_start) {
            if (code.contains(".unwrap()") || code.contains(".expect("))
                && !f.marked(i + 1, "lint:allow(unwrap)", 3)
            {
                out.push(line_diag(
                    f,
                    "hot-unwrap",
                    i,
                    code,
                    "panic on the worker/submit path; return a typed ServerError \
                     or justify with `// lint:allow(unwrap):`"
                        .into(),
                ));
            }
        }
    }

    // ---- guard-across-io ----------------------------------------------
    if ctx.hot_path {
        const IO_MARKERS: &[&str] = &["read_page(", "fetch_pages(", ".execute(", "session_for("];
        for (i, code) in code_lines.iter().enumerate().take(test_start) {
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("let ") else {
                continue;
            };
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Only bindings whose value IS the guard: `let g = x.lock();`.
            // A trailing method call (`x.lock().stats();`) drops the
            // temporary at the end of the statement.
            let end = code.trim_end();
            let is_guard = end.ends_with(".lock();")
                || end.ends_with(".read();")
                || end.ends_with(".write();");
            if name.is_empty() || !is_guard || f.marked(i + 1, "lint:allow(guard-across-io)", 3) {
                continue;
            }
            let indent = code.len() - code.trim_start().len();
            let dropper = format!("drop({name})");
            for (j, later) in code_lines.iter().enumerate().take(test_start).skip(i + 1) {
                if later.trim().is_empty() {
                    continue;
                }
                let lindent = later.len() - later.trim_start().len();
                if lindent < indent || later.contains(&dropper) {
                    break;
                }
                if IO_MARKERS.iter().any(|m| later.contains(m)) {
                    out.push(line_diag(
                        f,
                        "guard-across-io",
                        j,
                        later,
                        format!(
                            "I/O or kernel call while guard `{name}` (taken at line {}) is \
                             held; drop it first or justify with \
                             `// lint:allow(guard-across-io):`",
                            i + 1
                        ),
                    ));
                    break;
                }
            }
        }
    }

    // ---- safety-comment -----------------------------------------------
    // Applies in test code too: unsafe in a test still needs a reason.
    for (i, code) in code_lines.iter().enumerate() {
        let code = code.trim_start();
        let starts_unsafe = code.contains("unsafe fn ")
            || code.contains("unsafe impl ")
            || code.contains("unsafe {");
        if starts_unsafe && !f.marked(i + 1, "SAFETY:", 2) && !f.marked(i + 1, "# Safety", 6) {
            out.push(line_diag(
                f,
                "safety-comment",
                i,
                code,
                "`unsafe` without a `// SAFETY:` comment within 5 lines".into(),
            ));
        }
    }

    out
}

/// Checks that a crate's `lib.rs` forbids unsafe code (unless the crate
/// is on the [`UNSAFE_CRATES`] allowlist).
pub fn check_forbid(rel_lib: &str, content: &str) -> Vec<Diagnostic> {
    let crate_dir = rel_lib.trim_end_matches("/src/lib.rs");
    if UNSAFE_CRATES.contains(&crate_dir) || content.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Diagnostic {
        rule: "forbid-unsafe",
        file: rel_lib.to_string(),
        line: 1,
        message: "crate does not need unsafe: add `#![forbid(unsafe_code)]`".into(),
        fingerprint: fingerprint("forbid-unsafe", rel_lib, "missing"),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let src = r#"
fn doc() {
    let msg = "never call Instant::now() here";
    // Instant::now() would be wrong
    let p = "x.unwrap() is banned";
}
"#;
        let f = SourceFile::new("x.rs", src);
        let ctx = FileCtx {
            hot_path: true,
            ..FileCtx::default()
        };
        assert!(check_file(ctx, &f).is_empty());
    }

    #[test]
    fn real_sites_still_fire() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let f = SourceFile::new("x.rs", src);
        let v = check_file(FileCtx::default(), &f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 2);
    }
}
