//! Static lock-acquisition-order analysis.
//!
//! Builds the lock-acquisition graph per function from the token
//! stream: a *guard binding* (`let g = recv.lock();` / `.read();` /
//! `.write();`) holds its lock class until `drop(g)` or the end of the
//! enclosing block (tracked by brace depth, token-accurate); an
//! assignment re-binding (`g = recv.lock();`) acquires the new lock
//! *before* the old guard drops, which is exactly parking_lot's
//! self-deadlock shape, so the old class is still counted as held; a
//! mid-expression `.lock()` (`recv.lock().push(x)`) is a momentary
//! acquisition recorded against the guards held at that point.
//!
//! Lock *classes* come from the declared hierarchy in
//! `docs/lock-order.md` (machine-readable ```` ```lock-order ````
//! block): each class names the struct fields whose `.lock()` /
//! `.read()` / `.write()` it covers and carries an integer level.
//! Acquiring a class requires its level to be strictly greater than
//! every held class's level. Acquiring a class *already held* is always
//! an error — this encodes DESIGN.md §13's same-shard-only rule: the
//! graft wait parks on the one `shard.state` guard it already owns
//! (condvar wait), and no thread may ever take a second shard lock.
//!
//! Acquisitions propagate through direct calls at depth 1: a call made
//! while guards are held contributes (held × callee's direct
//! acquisitions) edges, with the callee resolved by name only when that
//! name maps to exactly one function in the scanned workspace (so
//! ubiquitous names like `push` or `len` never mis-resolve — a
//! documented soundness limit, with trait-object and closure targets
//! unresolved likewise; see DESIGN.md §16).
//!
//! Independent of the declared levels, the full observed edge set
//! (including `lint:allow(lock-order)`-suppressed edges) feeds a cycle
//! detector: any cycle among distinct classes is reported even if each
//! individual edge was waved through.

use crate::diag::{fingerprint, Diagnostic};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{skip_group_back, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One declared lock class.
#[derive(Clone, Debug)]
pub struct LockClass {
    pub name: String,
    pub level: u32,
    /// Field names whose `.lock()`/`.read()`/`.write()` map to this
    /// class (e.g. `state` → `shard.state`).
    pub fields: Vec<String>,
}

/// The declared hierarchy from `docs/lock-order.md`.
#[derive(Clone, Debug, Default)]
pub struct LockSpec {
    pub classes: Vec<LockClass>,
}

impl LockSpec {
    /// Parses the ```` ```lock-order ```` block: one
    /// `class <name> <level> <field> [field …]` per line, `#` comments.
    pub fn parse(block: &[(usize, String)]) -> Result<LockSpec, String> {
        let mut classes: Vec<LockClass> = Vec::new();
        for (lineno, line) in block {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let w: Vec<&str> = line.split_whitespace().collect();
            if w.len() < 4 || w[0] != "class" {
                return Err(format!(
                    "lock-order spec line {lineno}: expected `class <name> <level> <field>…`, got {line:?}"
                ));
            }
            let level: u32 = w[2]
                .parse()
                .map_err(|_| format!("lock-order spec line {lineno}: bad level {:?}", w[2]))?;
            if classes.iter().any(|c| c.name == w[1]) {
                return Err(format!(
                    "lock-order spec line {lineno}: duplicate class {:?}",
                    w[1]
                ));
            }
            for fld in &w[3..] {
                if classes.iter().any(|c| c.fields.iter().any(|f| f == fld)) {
                    return Err(format!(
                        "lock-order spec line {lineno}: field {fld:?} already mapped"
                    ));
                }
            }
            classes.push(LockClass {
                name: w[1].to_string(),
                level,
                fields: w[3..].iter().map(|s| s.to_string()).collect(),
            });
        }
        if classes.is_empty() {
            return Err("lock-order spec declares no classes".into());
        }
        Ok(LockSpec { classes })
    }

    fn class_of(&self, field: &str) -> Option<&LockClass> {
        self.classes
            .iter()
            .find(|c| c.fields.iter().any(|f| f == field))
    }

    fn level(&self, class: &str) -> Option<u32> {
        self.classes
            .iter()
            .find(|c| c.name == class)
            .map(|c| c.level)
    }
}

/// A lock class acquired while another was held — one graph edge with a
/// representative source site.
#[derive(Clone, Debug)]
struct PairObs {
    held: String,
    acq: String,
    file: usize,
    line: usize,
    func: String,
    /// `Some(callee)` when the edge came from depth-1 call propagation.
    via: Option<String>,
}

/// Per-function scan result.
struct FnLocks {
    name: String,
    /// Classes this function acquires directly (guard or momentary).
    direct: Vec<String>,
}

/// A call site made while guards were held.
struct CallObs {
    callee: String,
    held: Vec<String>,
    file: usize,
    line: usize,
    func: String,
}

struct Held {
    class: String,
    name: Option<String>,
    depth: i32,
}

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Walks backward from the `.` before a lock method and returns the
/// receiver's *field name*: the first identifier after skipping
/// trailing index/call groups and tuple indices. `self.shards[k % N]`
/// → `shards`; `gate.0` → `gate`; `sh.state` → `state`.
fn receiver_field(toks: &[Tok], dot: usize) -> Option<String> {
    let mut k = dot as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.is_punct(')') || t.is_punct(']') {
            k = skip_group_back(toks, k as usize) as isize - 1;
        } else if t.kind == TokKind::Lit {
            // Tuple index (`gate.0`): step over it and its dot.
            if k >= 1 && toks[k as usize - 1].is_punct('.') {
                k -= 2;
            } else {
                return None;
            }
        } else if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        } else {
            return None;
        }
    }
    None
}

/// Classifies the statement around an acquisition that ends in
/// `.lock();`: scans back to the nearest statement delimiter and
/// matches `let [mut] NAME =` (fresh binding) or `NAME =` (re-binding).
enum Binding {
    Let(String),
    Reassign(String),
    None,
}

fn binding_of(toks: &[Tok], lock_ident: usize, body_start: usize) -> Binding {
    let mut d = lock_ident as isize - 1;
    while d as usize > body_start {
        let t = &toks[d as usize];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_punct(')') || t.is_punct(']') {
            d = skip_group_back(toks, d as usize) as isize;
        }
        d -= 1;
    }
    let mut s = d as usize + 1;
    let is_let = toks.get(s).is_some_and(|t| t.is_ident("let"));
    if is_let {
        s += 1;
    }
    if toks.get(s).is_some_and(|t| t.is_ident("mut")) {
        s += 1;
    }
    let (Some(name_tok), Some(eq_tok)) = (toks.get(s), toks.get(s + 1)) else {
        return Binding::None;
    };
    // Require a single `=` (not `==`) right after the name.
    if name_tok.kind != TokKind::Ident
        || !eq_tok.is_punct('=')
        || toks.get(s + 2).is_some_and(|t| t.is_punct('='))
    {
        return Binding::None;
    }
    if is_let {
        Binding::Let(name_tok.text.clone())
    } else {
        Binding::Reassign(name_tok.text.clone())
    }
}

/// Identifiers that precede `(` without being workspace function calls.
/// The second group is std container/sync method names: resolution is by
/// name only, so a workspace fn sharing a name with e.g. `HashMap::drain`
/// would otherwise be "called" by every map drain in the codebase.
const CALL_STOPWORDS: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "unsafe",
    "move",
    "in",
    "let",
    "else",
    "fn",
    "impl",
    "pub",
    "use",
    "mod",
    "struct",
    "enum",
    "trait",
    "type",
    "where",
    "Some",
    "Ok",
    "Err",
    "None",
    "self",
    "Self",
    "super",
    "crate",
    "drop",
    "lock",
    "read",
    "write",
    "drain",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "clear",
    "take",
    "join",
    "wait",
    "send",
    "recv",
    "clone",
    "iter",
    "next",
    "len",
    "swap",
    "load",
    "store",
    "compare_exchange",
    "fetch_add",
    "notify_all",
    "notify_one",
];

/// Scans one function body for acquisitions, releases, and calls.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    f: &SourceFile,
    file_idx: usize,
    item: &lexer::FnItem,
    nested: &[(usize, usize)],
    spec: &LockSpec,
    pairs: &mut Vec<PairObs>,
    calls: &mut Vec<CallObs>,
    fns: &mut Vec<FnLocks>,
) {
    let toks = &f.lexed.tokens;
    let (bs, be) = item.body;
    let mut held: Vec<Held> = Vec::new();
    let mut direct: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut i = bs;
    while i <= be && i < toks.len() {
        if let Some(&(_, ne)) = nested.iter().find(|(ns, _)| *ns == i) {
            i = ne + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            held.retain(|h| h.depth < depth);
            depth -= 1;
        } else if t.kind == TokKind::Ident
            && t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
            && toks.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            let victim = &toks[i + 2].text;
            held.retain(|h| h.name.as_deref() != Some(victim));
            i += 4;
            continue;
        } else if t.kind == TokKind::Ident
            && LOCK_METHODS.contains(&t.text.as_str())
            && i > bs
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(')'))
        {
            if let Some(field) = receiver_field(toks, i - 1) {
                let class = spec
                    .class_of(&field)
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| format!("?{field}"));
                // Record edges against everything currently held —
                // including a re-bound guard's old class, which really is
                // still locked when the new acquisition happens.
                for h in &held {
                    pairs.push(PairObs {
                        held: h.class.clone(),
                        acq: class.clone(),
                        file: file_idx,
                        line: t.line,
                        func: item.name.clone(),
                        via: None,
                    });
                }
                if !direct.contains(&class) {
                    direct.push(class.clone());
                }
                let ends_stmt = toks.get(i + 3).is_some_and(|x| x.is_punct(';'));
                if ends_stmt {
                    match binding_of(toks, i, bs) {
                        Binding::Let(name) => held.push(Held {
                            class,
                            name: Some(name),
                            depth,
                        }),
                        Binding::Reassign(name) => {
                            held.retain(|h| h.name.as_deref() != Some(name.as_str()));
                            held.push(Held {
                                class,
                                name: Some(name),
                                depth,
                            });
                        }
                        Binding::None => {}
                    }
                }
                i += 3;
                continue;
            }
        } else if t.kind == TokKind::Ident
            && !held.is_empty()
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
            && !CALL_STOPWORDS.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            calls.push(CallObs {
                callee: t.text.clone(),
                held: held.iter().map(|h| h.class.clone()).collect(),
                file: file_idx,
                line: t.line,
                func: item.name.clone(),
            });
        }
        i += 1;
    }
    fns.push(FnLocks {
        name: item.name.clone(),
        direct,
    });
}

/// Runs the analysis over the workspace files.
pub fn check(spec: &LockSpec, files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut pairs: Vec<PairObs> = Vec::new();
    let mut calls: Vec<CallObs> = Vec::new();
    let mut fns: Vec<FnLocks> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        let items = lexer::fn_items(&f.lexed.tokens);
        for item in &items {
            if f.in_test(item.line) {
                continue;
            }
            let nested = lexer::nested_bodies(&items, item);
            scan_fn(f, fi, item, &nested, spec, &mut pairs, &mut calls, &mut fns);
        }
    }

    // Depth-1 call propagation: resolve callees by workspace-unique name.
    let mut by_name: BTreeMap<&str, Vec<&FnLocks>> = BTreeMap::new();
    for fl in &fns {
        by_name.entry(fl.name.as_str()).or_default().push(fl);
    }
    for c in &calls {
        let Some(cands) = by_name.get(c.callee.as_str()) else {
            continue;
        };
        if cands.len() != 1 || cands[0].direct.is_empty() {
            continue;
        }
        for h in &c.held {
            for d in &cands[0].direct {
                pairs.push(PairObs {
                    held: h.clone(),
                    acq: d.clone(),
                    file: c.file,
                    line: c.line,
                    func: c.func.clone(),
                    via: Some(c.callee.clone()),
                });
            }
        }
    }

    let mut out: Vec<Diagnostic> = Vec::new();
    let mut seen_keys: BTreeSet<String> = BTreeSet::new();
    let mut push_once = |out: &mut Vec<Diagnostic>, d: Diagnostic| {
        if seen_keys.insert(d.fingerprint.clone()) {
            out.push(d);
        }
    };

    // Order and same-class violations.
    for p in &pairs {
        let file = &files[p.file];
        let unknowns: Vec<&str> = [p.held.as_str(), p.acq.as_str()]
            .into_iter()
            .filter(|c| c.starts_with('?'))
            .collect();
        if !unknowns.is_empty() {
            for u in unknowns {
                let key = format!("unknown:{}@{}", u, p.func);
                push_once(
                    &mut out,
                    Diagnostic {
                        rule: "lock-order",
                        file: file.rel.clone(),
                        line: p.line,
                        message: format!(
                            "lock on undeclared field `{}` held together with other locks in \
                             `{}`; add a class for it to docs/lock-order.md",
                            &u[1..],
                            p.func
                        ),
                        fingerprint: fingerprint("lock-order", &file.rel, &key),
                    },
                );
            }
            continue;
        }
        if file.marked(p.line, "lint:allow(lock-order)", 3) {
            continue;
        }
        let (lh, la) = (spec.level(&p.held).unwrap(), spec.level(&p.acq).unwrap());
        if p.held == p.acq {
            let key = format!("same:{}@{}", p.acq, p.func);
            push_once(
                &mut out,
                Diagnostic {
                    rule: "lock-order",
                    file: file.rel.clone(),
                    line: p.line,
                    message: format!(
                        "`{}` re-acquires lock class `{}` while an instance is already held{} — \
                         two instances of one class (e.g. two shard locks) may never be held \
                         together (DESIGN.md §13 same-shard-only rule)",
                        p.func,
                        p.acq,
                        p.via
                            .as_deref()
                            .map(|v| format!(" (via call to `{v}`)"))
                            .unwrap_or_default(),
                    ),
                    fingerprint: fingerprint("lock-order", &file.rel, &key),
                },
            );
        } else if la <= lh {
            let key = format!("order:{}->{}@{}", p.held, p.acq, p.func);
            push_once(
                &mut out,
                Diagnostic {
                    rule: "lock-order",
                    file: file.rel.clone(),
                    line: p.line,
                    message: format!(
                        "`{}` acquires `{}` (level {la}) while holding `{}` (level {lh}){}; \
                         declared order in docs/lock-order.md requires strictly ascending levels",
                        p.func,
                        p.acq,
                        p.held,
                        p.via
                            .as_deref()
                            .map(|v| format!(" (via call to `{v}`)"))
                            .unwrap_or_default(),
                    ),
                    fingerprint: fingerprint("lock-order", &file.rel, &key),
                },
            );
        }
    }

    // Cycle detection over the full edge set — `lint:allow` waves an
    // edge through but cannot hide a cycle it participates in.
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut rep: BTreeMap<(&str, &str), (usize, usize)> = BTreeMap::new();
    for p in &pairs {
        if p.held.starts_with('?') || p.acq.starts_with('?') || p.held == p.acq {
            continue;
        }
        edges.entry(&p.held).or_default().insert(&p.acq);
        rep.entry((&p.held, &p.acq)).or_insert((p.file, p.line));
    }
    for cycle in find_cycles(&edges) {
        let label = cycle.join(" -> ");
        let (fi, line) = rep[&(cycle[0], cycle[1 % cycle.len()])];
        let key = format!("cycle:{label}");
        push_once(
            &mut out,
            Diagnostic {
                rule: "lock-order",
                file: files[fi].rel.clone(),
                line,
                message: format!(
                    "lock-acquisition cycle: {label} -> {} — a deadlock is reachable regardless \
                     of declared levels",
                    cycle[0]
                ),
                fingerprint: fingerprint("lock-order", &files[fi].rel, &key),
            },
        );
    }

    out
}

/// Finds elementary cycles (as normalized class lists) via DFS. Each
/// cycle is rotated to start at its lexicographically smallest node and
/// deduplicated.
fn find_cycles<'a>(edges: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut found: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &start in edges.keys() {
        let mut stack: Vec<&str> = vec![start];
        dfs(start, edges, &mut stack, &mut found);
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    stack: &mut Vec<&'a str>,
    found: &mut BTreeSet<Vec<&'a str>>,
) {
    let Some(next) = edges.get(node) else {
        return;
    };
    for &n in next {
        if let Some(pos) = stack.iter().position(|&s| s == n) {
            let mut cycle: Vec<&str> = stack[pos..].to_vec();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min);
            found.insert(cycle);
        } else if stack.len() < 16 {
            stack.push(n);
            dfs(n, edges, stack, found);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LockSpec {
        LockSpec::parse(&[
            (1, "# comment".into()),
            (2, "class admission 10 admission".into()),
            (3, "class shard.state 30 state".into()),
            (4, "class store 40 store".into()),
            (5, "class metrics 60 metrics".into()),
        ])
        .unwrap()
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&spec(), &[&SourceFile::new("t.rs", src)])
    }

    #[test]
    fn ascending_order_is_clean() {
        let v = run(
            "fn ok(&self) {\n let a = self.admission.lock();\n let s = self.shard.state.lock();\n \
             self.metrics.lock().push(1);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn descending_order_fires() {
        let v = run(
            "fn bad(&self) {\n let s = self.store.write();\n let a = self.admission.lock();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert_eq!(v[0].line, 3);
        assert!(
            v[0].message.contains("strictly ascending"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn drop_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n let s = self.store.write();\n drop(s);\n let a = self.admission.lock();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_end_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n {\n  let s = self.store.write();\n }\n let a = self.admission.lock();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_class_twice_fires() {
        let v = run("fn bad(&self, a: &S, b: &S) {\n let x = a.state.lock();\n let y = b.state.lock();\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("same-shard-only"), "{}", v[0].message);
    }

    #[test]
    fn rebind_without_drop_is_self_deadlock() {
        let v =
            run("fn bad(&self) {\n let mut g = self.state.lock();\n g = self.state.lock();\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("re-acquires"));
    }

    #[test]
    fn rebind_after_drop_is_clean() {
        let v = run(
            "fn ok(&self) {\n let mut g = self.state.lock();\n drop(g);\n g = self.state.lock();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn momentary_acquisition_is_instantaneous() {
        // Two momentary locks in sequence never overlap.
        let v = run(
            "fn ok(&self) {\n self.store.write().clear();\n self.admission.lock().reset();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn momentary_under_guard_records_edge() {
        let v = run(
            "fn bad(&self) {\n let s = self.store.write();\n self.admission.lock().reset();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn call_propagation_depth_one() {
        let v = run(
            "fn callee(&self) {\n let s = self.store.write();\n}\nfn caller(&self) {\n \
             let m = self.metrics.lock();\n self.callee();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("via call to `callee`"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn ambiguous_callee_names_do_not_propagate() {
        let v = run(
            "fn twin(&self) {\n let s = self.store.write();\n}\nmod m {\n fn twin(&self) {\n \
             let s = self.store.write();\n}\n}\nfn caller(&self) {\n let m = self.metrics.lock();\n \
             self.twin();\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lint_allow_suppresses_order_but_not_cycles() {
        // A->B in one fn (allowed), B->A in another (allowed): both order
        // diagnostics suppressed, but the cycle still fires.
        let v = run(
            "fn one(&self) {\n let s = self.store.write();\n // lint:allow(lock-order): test\n \
             let m = self.admission.lock();\n}\nfn two(&self) {\n let a = self.admission.lock();\n \
             let t = self.store.write();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("cycle"), "{}", v[0].message);
    }

    #[test]
    fn undeclared_field_in_pair_fires() {
        let v =
            run("fn bad(&self) {\n let s = self.store.write();\n self.mystery.lock().go();\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("undeclared field `mystery`"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn undeclared_field_alone_is_quiet() {
        let v = run("fn ok(&self) {\n let s = self.mystery.lock();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod t {\n fn bad(&self) {\n let s = self.store.write();\n \
                   let a = self.admission.lock();\n }\n}\n";
        let v = check(&spec(), &[&SourceFile::new("t.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn indexed_receiver_resolves_to_field() {
        let v = run(
            "fn bad(&self) {\n let s = self.shards[k].state.lock();\n let t = self.shards[j].state.lock();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("shard.state"), "{}", v[0].message);
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        assert!(LockSpec::parse(&[(1, "class only_two 10".into())]).is_err());
        assert!(LockSpec::parse(&[(1, "class a x a".into())]).is_err());
        assert!(
            LockSpec::parse(&[(1, "class a 10 f".into()), (2, "class a 20 g".into())]).is_err()
        );
        assert!(
            LockSpec::parse(&[(1, "class a 10 f".into()), (2, "class b 20 f".into())]).is_err()
        );
    }
}
