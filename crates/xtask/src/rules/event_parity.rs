//! Server/sim event-parity analysis.
//!
//! The conformance harness (DESIGN.md §9) asserts the threaded server
//! and the discrete-event simulator emit identical golden traces. That
//! only holds if *neither engine can construct an `EventKind` variant
//! the other cannot*. This rule turns that structural invariant into a
//! static check: parse the `EventKind` enum's variants out of
//! `crates/obs/src/event.rs`, collect every variant *construction* in
//! `crates/server` vs `crates/sim` non-test code, and report any
//! variant reachable from one engine but not the other, grouped by
//! lifecycle (submit/rank/reuse-graft/io/spill/terminal/chaos).
//!
//! `EventKind::X` occurrences in *pattern position* are uses, not
//! emissions, and are excluded: inside a `matches!(…)` invocation,
//! match arms (`EventKind::X {…} =>`), and `let`-destructurings.
//! Comparisons (`==`/`!=` against a fieldless variant) are likewise
//! reads. Everything else — struct-literal or bare-variant expressions
//! — counts as a construction site.

use crate::diag::{fingerprint, Diagnostic};
use crate::lexer::TokKind;
use crate::rules::{skip_group, SourceFile};
use std::collections::BTreeMap;

/// Lifecycle grouping for diagnostics (ISSUE: per-lifecycle parity).
fn lifecycle(variant: &str) -> &'static str {
    match variant {
        "Submitted" | "Rejected" | "Shed" => "submit",
        "Ranked" => "rank",
        "LookupHit" | "Grafted" | "SubquerySpawned" => "reuse-graft",
        "PageRead" => "io",
        "Evicted" | "Spilled" | "Restored" => "spill",
        "Completed" | "Failed" | "TimedOut" | "Degraded" => "terminal",
        "WorkerPanicked" | "Quarantined" | "WorkerRestarted" | "Hung" => "chaos",
        _ => "other",
    }
}

/// Parses the variant names of `enum <name>` from a lexed file.
pub fn enum_variants(f: &SourceFile, name: &str) -> Vec<String> {
    let toks = &f.lexed.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) && toks[i + 2].is_punct('{') {
            let end = skip_group(toks, i + 2) - 1;
            let mut out = Vec::new();
            let mut j = i + 3;
            while j < end {
                let t = &toks[j];
                if t.is_punct('#') {
                    // Attribute: `#[…]`.
                    if toks.get(j + 1).is_some_and(|x| x.is_punct('[')) {
                        j = skip_group(toks, j + 1);
                        continue;
                    }
                } else if t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                    j += 1;
                    // Skip an optional payload group, then the comma.
                    if toks
                        .get(j)
                        .is_some_and(|x| x.is_punct('{') || x.is_punct('('))
                    {
                        j = skip_group(toks, j);
                    }
                    while j < end && !toks[j].is_punct(',') {
                        j += 1;
                    }
                    continue;
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    Vec::new()
}

/// Construction sites of `<enum>::<variant>` in one file's non-test
/// code: variant name → first line.
pub fn constructions(f: &SourceFile, enum_name: &str) -> BTreeMap<String, usize> {
    let toks = &f.lexed.tokens;
    // Pre-compute `matches!( … )` group extents; hits inside are patterns.
    let mut pattern_ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].is_ident("matches") && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('(') {
            pattern_ranges.push((i + 2, skip_group(toks, i + 2)));
        }
    }
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let hit = toks[i].is_ident(enum_name)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident;
        if !hit {
            i += 1;
            continue;
        }
        let variant = &toks[i + 3];
        let line = variant.line;
        if f.in_test(line) {
            i += 4;
            continue;
        }
        // Pattern contexts.
        let in_matches = pattern_ranges.iter().any(|&(lo, hi)| i > lo && i < hi);
        let after_let = i > 0 && toks[i - 1].is_ident("let");
        // Skip the optional payload group to see what follows.
        let mut j = i + 4;
        if toks
            .get(j)
            .is_some_and(|x| x.is_punct('{') || x.is_punct('('))
        {
            j = skip_group(toks, j);
        }
        let arm_arrow = toks.get(j).is_some_and(|x| x.is_punct('='))
            && toks.get(j + 1).is_some_and(|x| x.is_punct('>'));
        let compared = (toks.get(j).is_some_and(|x| x.is_punct('='))
            && toks.get(j + 1).is_some_and(|x| x.is_punct('=')))
            || (i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].is_punct('='))
            || (i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].is_punct('!'));
        // `|` alternation inside a match pattern.
        let alternated =
            toks.get(j).is_some_and(|x| x.is_punct('|')) || (i >= 1 && toks[i - 1].is_punct('|'));
        if !(in_matches || after_let || arm_arrow || compared || alternated) {
            out.entry(variant.text.clone()).or_insert(line);
        }
        i = j;
    }
    out
}

/// Checks construction parity between the two engines. `obs_event` is
/// the file declaring the enum; `server`/`sim` are each engine's source
/// files.
pub fn check(
    obs_event: &SourceFile,
    server: &[&SourceFile],
    sim: &[&SourceFile],
) -> Vec<Diagnostic> {
    let variants = enum_variants(obs_event, "EventKind");
    if variants.is_empty() {
        return vec![Diagnostic {
            rule: "event-parity",
            file: obs_event.rel.clone(),
            line: 1,
            message: "could not parse `enum EventKind` variants — rule cannot run".into(),
            fingerprint: fingerprint("event-parity", &obs_event.rel, "no-enum"),
        }];
    }
    let collect = |files: &[&SourceFile]| -> BTreeMap<String, (String, usize)> {
        let mut all: BTreeMap<String, (String, usize)> = BTreeMap::new();
        for f in files {
            for (v, line) in constructions(f, "EventKind") {
                all.entry(v).or_insert((f.rel.clone(), line));
            }
        }
        all
    };
    let server_c = collect(server);
    let sim_c = collect(sim);

    let mut out = Vec::new();
    for v in &variants {
        let s = server_c.get(v);
        let m = sim_c.get(v);
        let (site, only, other) = match (s, m) {
            (Some(site), None) => (site, "server", "sim"),
            (None, Some(site)) => (site, "sim", "server"),
            _ => continue, // both or neither — parity holds
        };
        out.push(Diagnostic {
            rule: "event-parity",
            file: site.0.clone(),
            line: site.1,
            message: format!(
                "`EventKind::{v}` ({} lifecycle) is constructed by the {only} engine but \
                 never by the {other} engine — golden traces can diverge on this variant",
                lifecycle(v)
            ),
            fingerprint: fingerprint("event-parity", "workspace", &format!("{v}|{only}-only")),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = "\
pub enum EventKind {
    Submitted,
    #[doc(hidden)]
    Ranked { score: f64 },
    Grafted { src: u64 },
    Shed,
}
";

    fn sf(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel, src)
    }

    #[test]
    fn enum_variants_parse_payloads_and_attrs() {
        let f = sf("event.rs", ENUM);
        assert_eq!(
            enum_variants(&f, "EventKind"),
            ["Submitted", "Ranked", "Grafted", "Shed"]
        );
    }

    #[test]
    fn symmetric_construction_is_clean() {
        let e = sf("event.rs", ENUM);
        let srv = sf(
            "server.rs",
            "fn a() { emit(EventKind::Submitted); emit(EventKind::Ranked { score: 1.0 }); }",
        );
        let sim = sf(
            "sim.rs",
            "fn b() { log(EventKind::Ranked { score: 2.0 }); log(EventKind::Submitted); }",
        );
        let v = check(&e, &[&srv], &[&sim]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn one_sided_variant_fires_with_lifecycle() {
        let e = sf("event.rs", ENUM);
        let srv = sf(
            "server.rs",
            "fn a() { emit(EventKind::Submitted); emit(EventKind::Grafted { src: 3 }); }",
        );
        let sim = sf("sim.rs", "fn b() { log(EventKind::Submitted); }");
        let v = check(&e, &[&srv], &[&sim]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("EventKind::Grafted"));
        assert!(v[0].message.contains("reuse-graft"));
        assert!(v[0].message.contains("server engine"));
        assert_eq!(v[0].file, "server.rs");
    }

    #[test]
    fn patterns_do_not_count_as_construction() {
        let e = sf("event.rs", ENUM);
        let srv = sf("server.rs", "fn a() { emit(EventKind::Shed); }");
        // The sim only *matches* on Shed — match arm, matches!, and a
        // `==` comparison — none of which emit it.
        let sim = sf(
            "sim.rs",
            "fn b(k: &EventKind) -> u8 {\n if matches!(k, EventKind::Shed) { return 1; }\n \
             if *k == EventKind::Shed { return 2; }\n match k {\n  EventKind::Shed => 3,\n  \
             EventKind::Ranked { .. } | EventKind::Grafted { .. } => 4,\n  _ => 0,\n }\n}\n\
             fn c() { log(EventKind::Submitted); }\nfn d() { log2(EventKind::Shed); }",
        );
        let srv2 = sf("server2.rs", "fn e() { emit(EventKind::Submitted); }");
        let v = check(&e, &[&srv, &srv2], &[&sim]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_construction_does_not_count() {
        let e = sf("event.rs", ENUM);
        let srv = sf("server.rs", "fn a() { emit(EventKind::Submitted); }");
        let sim = sf(
            "sim.rs",
            "fn b() { log(EventKind::Submitted); }\n#[cfg(test)]\nmod t {\n fn x() { \
             log(EventKind::Shed); }\n}",
        );
        // Shed is constructed by neither engine's production code.
        let v = check(&e, &[&srv], &[&sim]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fingerprint_is_site_independent() {
        let e = sf("event.rs", ENUM);
        let srv1 = sf("server.rs", "fn a() { emit(EventKind::Shed); }");
        let srv2 = sf(
            "server.rs",
            "fn pad() {}\nfn a() { emit(EventKind::Shed); }",
        );
        let sim = sf("sim.rs", "fn b() {}");
        let v1 = check(&e, &[&srv1], &[&sim]);
        let v2 = check(&e, &[&srv2], &[&sim]);
        assert_eq!(v1[0].fingerprint, v2[0].fingerprint);
        assert_ne!(v1[0].line, v2[0].line);
    }
}
