// Seeded violations for the `wall-clock` rule. Not compiled — scanned
// by the xtask unit tests, which expect exactly two
// findings and none from the marked or test-module sites.
use std::time::{Instant, SystemTime};

pub fn bad_monotonic() -> Instant {
    Instant::now()
}

pub fn bad_calendar() -> SystemTime {
    SystemTime::now()
}

// lint:allow(wall-clock): fixture demonstrating the escape hatch
pub fn allowed() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _ = std::time::Instant::now();
    }
}
