//! Lock usage the analyzer must accept: ascending acquisition,
//! scope/drop-delimited guards, rebinding after drop, momentary leaf
//! locks, and the `lint:allow(lock-order)` escape hatch.

impl Engine {
    /// Ascending acquisition with a momentary leaf lock at the end.
    pub fn ordered(&self) {
        let a = self.admission.lock();
        let s = self.shards[0].state.lock();
        self.metrics.lock().push(1);
        drop(s);
        drop(a);
    }

    /// Sequential scopes never overlap.
    pub fn sequential(&self) {
        {
            let s = self.store.write();
            s.touch();
        }
        let a = self.admission.lock();
        drop(a);
    }

    /// Re-binding after an explicit drop is a fresh acquisition, not a
    /// self-deadlock.
    pub fn rebind(&self) {
        let mut g = self.store.write();
        drop(g);
        g = self.store.write();
        drop(g);
    }

    /// The escape hatch: a justified descending pair.
    pub fn waved(&self) {
        let s = self.store.write();
        // lint:allow(lock-order): fixture demonstrates the escape hatch
        let q = self.quarantine.lock();
        drop(q);
        drop(s);
    }
}
