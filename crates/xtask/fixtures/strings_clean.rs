//! Rule patterns inside strings and comments — must stay quiet on the
//! syntax-aware linter. (The old regex linter flagged several of
//! these.)

/// Documentation mentioning Instant::now() in prose is fine.
pub fn help_text() -> &'static str {
    "never call Instant::now() or SystemTime::now() directly; \
     x.unwrap() and x.expect(...) are banned on the hot path"
}

pub fn raw_patterns() -> &'static str {
    r#"let g = self.state.lock(); read_page(0); drop(g);"#
}

pub fn declared_in_string() -> &'static str {
    "names: HashMap<QueryId, u32> — then names.keys() would be nondet"
}

pub fn commented() {
    // let t = Instant::now(); — commented-out code never fires
    /* iterating self.map.iter() over a HashMap<K, V> would be nondet */
    let _ = help_text();
}
