// Clean fixture: scanned with every rule enabled (surface + hot path),
// expecting zero findings.
use std::collections::BTreeMap;

pub struct Ranked {
    ordered: BTreeMap<u64, f64>,
}

impl Ranked {
    pub fn top(&self) -> Option<u64> {
        self.ordered.keys().next().copied()
    }

    pub fn total(&self) -> f64 {
        self.ordered.values().sum()
    }
}

pub fn checked(v: Option<u64>) -> Result<u64, String> {
    v.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_and_unwrap_allowed_here() {
        let t = std::time::Instant::now();
        assert!(super::checked(Some(1)).unwrap() == 1);
        let _ = t.elapsed();
    }
}
