//! Seeded phase-transition violation: `abort` performs a store the
//! declared table does not allow.

pub struct EntryState {
    phase: AtomicU8,
}

impl EntryState {
    pub fn publish(&self) -> bool {
        self.phase
            .compare_exchange(
                Phase::Accumulating as u8,
                Phase::Full as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    pub fn force_swap_out(&self) {
        self.phase.store(Phase::SwappedOut as u8, Ordering::Release);
    }

    /// Undeclared arc: no spec row allows a Relaxed store to Restorable.
    pub fn abort(&self) {
        self.phase.store(Phase::Restorable as u8, Ordering::Relaxed);
    }
}
