//! Server side constructing exactly the variants the sim fixture
//! constructs — parity holds.

pub fn emit_all(log: &mut Vec<EventKind>) {
    log.push(EventKind::Submitted);
    log.push(EventKind::Ranked { score: 1.0 });
}
