//! Fixture event enum for the event-parity rule.

pub enum EventKind {
    Submitted,
    Ranked { score: f64 },
    Grafted { source: u64 },
    Shed,
}
