// Seeded violation for the `safety-comment` rule. One finding
// expected: the undocumented unsafe block; the documented fn and
// documented call site stay quiet.

/// Reads a byte.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_byte(p: *const u8) -> u8 {
    *p
}

pub fn documented(buf: &[u8]) -> u8 {
    // SAFETY: buf is non-empty, checked by the caller.
    unsafe { read_byte(buf.as_ptr()) }
}

pub fn undocumented(buf: &[u8]) -> u8 {
    unsafe { read_byte(buf.as_ptr()) }
}
