// Seeded violations for the `hot-unwrap` rule (only fires when the
// file is on the hot-path list). Two findings expected: the unwrap and
// the expect; the justified site and the test module stay quiet.

pub fn bad_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u64>) -> u64 {
    v.expect("value must be present")
}

pub fn justified(v: Option<u64>) -> u64 {
    // lint:allow(unwrap): fixture demonstrating the escape hatch
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
