// Seeded violations for the `nondet-iter` rule (only fires when the
// file is on the deterministic-surface list). Two findings expected:
// the keys() iteration and the for-loop; the justified drain and the
// BTreeMap stay quiet.
use std::collections::{BTreeMap, HashMap};

pub struct Ranked {
    scores: HashMap<u64, f64>,
    ordered: BTreeMap<u64, f64>,
}

impl Ranked {
    pub fn bad_keys(&self) -> Vec<u64> {
        self.scores.keys().copied().collect()
    }

    pub fn bad_loop(&self) -> f64 {
        let mut total = 0.0;
        for (_, v) in &self.scores {
            total += v;
        }
        total
    }

    pub fn justified(&mut self) -> Vec<(u64, f64)> {
        // lint:sorted: drained pairs are sorted before they escape
        let mut pairs: Vec<_> = self.scores.drain().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    pub fn deterministic(&self) -> Vec<u64> {
        self.ordered.keys().copied().collect()
    }
}
