//! Seeded violations for the `guard-across-io` rule. Scanned by the
//! xtask unit tests only — never compiled.

pub fn bad_lock_across_page_read(ps: &PageSpace, core: &Core) {
    let g = core.state.lock();
    let page = ps.read_page(g.dataset, 0);
    drop(g);
    consume(page);
}

pub fn bad_read_guard_across_kernel(core: &Core) {
    let ds = core.store.read();
    core.app.execute(&ds.spec, &[], &core.ps.session_for(0, None));
}

pub fn good_drop_before_io(ps: &PageSpace, core: &Core) {
    let g = core.state.lock();
    let dataset = g.dataset;
    drop(g);
    consume(ps.read_page(dataset, 0));
}

pub fn good_scope_ends_before_io(ps: &PageSpace, core: &Core) {
    {
        let g = core.state.lock();
        consume(g.dataset);
    }
    consume(ps.read_page(0, 0));
}

pub fn good_temporary_guard(ps: &PageSpace, core: &Core) {
    let stats = core.state.lock().stats();
    consume(ps.read_page(stats.dataset, 0));
}

pub fn allowed_with_reason(ps: &PageSpace, core: &Core) {
    // lint:allow(guard-across-io): single-threaded recovery path at startup
    let g = core.state.lock();
    consume(ps.read_page(g.dataset, 0));
}

#[cfg(test)]
mod tests {
    pub fn fine_in_tests(ps: &PageSpace, core: &Core) {
        let g = core.state.lock();
        consume(ps.read_page(g.dataset, 0));
    }
}
