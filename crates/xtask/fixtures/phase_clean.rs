//! Phase mutations exactly matching the fixture transition table —
//! the analyzer must stay quiet.

pub struct EntryState {
    phase: AtomicU8,
}

impl EntryState {
    pub fn publish(&self) -> bool {
        self.phase
            .compare_exchange(
                Phase::Accumulating as u8,
                Phase::Full as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    pub fn force_swap_out(&self) {
        self.phase.store(Phase::SwappedOut as u8, Ordering::Release);
    }
}
