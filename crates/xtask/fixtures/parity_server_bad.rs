//! Server side of the seeded parity violation: constructs `Grafted`,
//! which the sim fixture only ever matches on.

pub fn emit_all(log: &mut Vec<EventKind>) {
    log.push(EventKind::Submitted);
    log.push(EventKind::Ranked { score: 1.0 });
    log.push(EventKind::Grafted { source: 7 });
}
