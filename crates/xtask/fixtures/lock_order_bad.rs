//! Seeded lock-order violations — the analyzer must flag all three
//! functions. Test-spec classes: admission=10, quarantine=20,
//! shard.state=30, store=40, metrics=60.

impl Engine {
    /// Inverted order: store (level 40) is held when admission (level
    /// 10) is taken.
    pub fn inverted(&self) {
        let s = self.store.write();
        let a = self.admission.lock();
        drop(a);
        drop(s);
    }

    /// Two shard locks held together — forbidden by the same-shard-only
    /// rule no matter the indices.
    pub fn two_shards(&self, i: usize, j: usize) {
        let a = self.shards[i].state.lock();
        let b = self.shards[j].state.lock();
        drop(b);
        drop(a);
    }

    /// The callee's direct acquisition is seen through depth-1 call
    /// propagation.
    pub fn through_call(&self) {
        let s = self.store.write();
        self.lock_admission_inner();
        drop(s);
    }

    fn lock_admission_inner(&self) {
        let a = self.admission.lock();
        drop(a);
    }
}
