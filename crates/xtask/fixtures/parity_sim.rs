//! Sim side: constructs Submitted and Ranked; *matches* on Grafted and
//! Shed without ever constructing them.

pub fn emit_all(log: &mut Vec<EventKind>) {
    log.push(EventKind::Submitted);
    log.push(EventKind::Ranked { score: 2.0 });
}

pub fn classify(k: &EventKind) -> u32 {
    match k {
        EventKind::Grafted { .. } => 1,
        EventKind::Shed => 2,
        _ => 0,
    }
}
