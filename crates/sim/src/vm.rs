//! The Virtual Microscope's [`SimApplication`] adapter.

use crate::app::{ReusePlan, SimApplication};
use vmqs_core::geom::subtract_all;
use vmqs_core::Rect;
use vmqs_microscope::{VmCostModel, VmOp, VmQuery, BYTES_PER_PIXEL, PAGE_SIZE};
use vmqs_pagespace::PageKey;

/// Virtual Microscope simulation adapter: 2-D greedy coverage from cached
/// windows, chunk-grid page mapping, and the calibrated CPU cost model.
#[derive(Clone, Copy, Debug)]
pub struct VmSimApp {
    /// CPU cost rates (see [`VmCostModel::calibrated`]).
    pub cost: VmCostModel,
}

impl VmSimApp {
    /// Creates the adapter from a cost model.
    pub fn new(cost: VmCostModel) -> Self {
        VmSimApp { cost }
    }
}

impl SimApplication for VmSimApp {
    type Spec = VmQuery;

    fn plan(&self, target: &VmQuery, cached: &[VmQuery]) -> ReusePlan {
        // Greedy projection, best candidate first (the caller passes
        // Data Store matches already ordered by reusable bytes).
        let mut covered: Vec<Rect> = Vec::new();
        let mut reused_px: u64 = 0;
        let z2 = target.zoom as u64 * target.zoom as u64;
        for src in cached {
            let cov = match src.aligned_coverage(target) {
                Some(c) => c,
                None => continue,
            };
            for frag in subtract_all(&cov, &covered) {
                reused_px += frag.area() / z2;
                covered.push(frag);
            }
        }

        let mut pages = Vec::new();
        let mut input_bytes = 0u64;
        for sub in target.subqueries_for_remainder(&covered) {
            let chunks = sub.slide.chunks_intersecting(&sub.region);
            input_bytes += chunks.len() as u64 * PAGE_SIZE as u64;
            pages.extend(chunks.into_iter().map(|i| PageKey::new(sub.slide.id, i)));
        }

        let (w, h) = target.output_dims();
        let total_px = w as u64 * h as u64;
        ReusePlan {
            covered_fraction: if total_px == 0 {
                0.0
            } else {
                reused_px as f64 / total_px as f64
            },
            reused_bytes: reused_px * BYTES_PER_PIXEL as u64,
            pages,
            input_bytes,
        }
    }

    fn compute_seconds(&self, spec: &VmQuery, input_bytes: u64) -> f64 {
        self.cost.compute_time(spec.op, input_bytes)
    }

    fn project_seconds(&self, reused_bytes: u64) -> f64 {
        self.cost.project_time(reused_bytes)
    }

    fn planning_seconds(&self) -> f64 {
        self.cost.planning_overhead
    }

    fn degrade(&self, spec: &VmQuery) -> Option<VmQuery> {
        // Same quality ladder as the threaded engine's `VmExecutor`:
        // averaging falls back to subsampling (~18x cheaper CPU per the
        // calibrated model); subsampling is already the floor.
        match spec.op {
            VmOp::Average => Some(VmQuery {
                op: VmOp::Subsample,
                ..*spec
            }),
            VmOp::Subsample => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, QuerySpec};
    use vmqs_microscope::{SlideDataset, VmOp};
    use vmqs_storage::DiskModel;

    fn app() -> VmSimApp {
        VmSimApp::new(VmCostModel::calibrated(&DiskModel::circa_2002()))
    }

    fn slide() -> SlideDataset {
        SlideDataset::paper_scale(DatasetId(0))
    }

    #[test]
    fn plan_without_cache_scans_all_chunks() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 2048, 2048), 2, VmOp::Subsample);
        let plan = app().plan(&q, &[]);
        assert_eq!(plan.covered_fraction, 0.0);
        assert_eq!(plan.reused_bytes, 0);
        assert_eq!(plan.input_bytes, q.qinputsize());
        assert_eq!(plan.pages.len() as u64, q.qinputsize() / PAGE_SIZE as u64);
    }

    #[test]
    fn plan_with_full_cover_needs_no_pages() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 2048, 2048), 4, VmOp::Subsample);
        let cached = VmQuery::new(slide(), Rect::new(0, 0, 4096, 4096), 2, VmOp::Subsample);
        let plan = app().plan(&q, &[cached]);
        assert!((plan.covered_fraction - 1.0).abs() < 1e-9);
        assert!(plan.pages.is_empty());
        assert_eq!(plan.input_bytes, 0);
        assert_eq!(plan.reused_bytes, q.qoutsize());
    }

    #[test]
    fn plan_partial_cover_reads_remainder_only() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 4096, 4096), 4, VmOp::Subsample);
        let cached = VmQuery::new(slide(), Rect::new(0, 0, 2048, 4096), 4, VmOp::Subsample);
        let plan = app().plan(&q, &[cached]);
        assert!((plan.covered_fraction - 0.5).abs() < 0.01);
        assert!(plan.input_bytes < q.qinputsize());
        assert!(!plan.pages.is_empty());
    }

    #[test]
    fn overlapping_candidates_not_double_counted() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 4096, 4096), 4, VmOp::Subsample);
        let c1 = VmQuery::new(slide(), Rect::new(0, 0, 4096, 2048), 4, VmOp::Subsample);
        let c2 = VmQuery::new(slide(), Rect::new(0, 0, 4096, 3072), 4, VmOp::Subsample);
        let plan = app().plan(&q, &[c2, c1]);
        assert!(
            plan.covered_fraction <= 0.76,
            "covered {}",
            plan.covered_fraction
        );
    }

    #[test]
    fn cost_rates_differ_by_op() {
        let a = app();
        let sub = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), 1, VmOp::Subsample);
        let avg = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), 1, VmOp::Average);
        assert!(a.compute_seconds(&avg, 1 << 20) > 10.0 * a.compute_seconds(&sub, 1 << 20));
        assert!(a.project_seconds(1 << 20) < a.compute_seconds(&sub, 1 << 20));
        assert!(a.planning_seconds() > 0.0);
    }
}
