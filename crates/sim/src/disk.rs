//! The simulated disk: a single FCFS queueing server.
//!
//! Every merged I/O run from every query thread goes through this one
//! server, so concurrent queries contend here exactly as the paper's
//! threads contended for the SMP's local disks: "for many threads the I/O
//! subsystem cannot keep up with the amount of requests it receives" (§5) —
//! which is what bends the Fig. 4 curves back up past ~4 threads.

use vmqs_storage::DiskModel;

/// Aggregate disk counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// I/O requests serviced (merged runs).
    pub requests: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total busy time (seconds).
    pub busy_time: f64,
    /// Total time requests spent queued before service (seconds).
    pub queue_time: f64,
}

/// A disk farm: `k` independent FCFS servers (spindles) in virtual time.
///
/// Requests go to the earliest-free disk, so I/O throughput scales up to
/// `k` concurrent streams. Beyond that, competing sequential streams
/// interleave on the same spindles and each request pays extra positioning
/// cost (seek thrash) proportional to the oversubscription. Together these
/// produce the paper's observed optimum near the farm's parallelism and
/// the degradation past it.
#[derive(Clone, Debug)]
pub struct DiskQueue {
    model: DiskModel,
    free_at: Vec<f64>,
    stats: DiskStats,
}

impl DiskQueue {
    /// Creates a single idle disk.
    pub fn new(model: DiskModel) -> Self {
        DiskQueue::with_servers(model, 1)
    }

    /// Creates a farm of `servers` identical disks.
    pub fn with_servers(model: DiskModel, servers: usize) -> Self {
        assert!(servers >= 1, "at least one disk required");
        DiskQueue {
            model,
            free_at: vec![0.0; servers],
            stats: DiskStats::default(),
        }
    }

    /// Number of independent disks.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a request of `bytes` at time `now` from a single stream;
    /// returns its completion time.
    pub fn submit(&mut self, now: f64, bytes: u64) -> f64 {
        self.submit_streams(now, bytes, 1)
    }

    /// Submits a request while `streams` queries are concurrently doing
    /// I/O. When streams exceed the farm's parallelism, positioning cost
    /// grows with the oversubscription factor: the heads shuttle between
    /// the interleaved sequential runs of competing queries. This is what
    /// makes "the I/O subsystem … not keep up" beyond the paper's
    /// ~4-thread sweet spot (§5).
    pub fn submit_streams(&mut self, now: f64, bytes: u64, streams: usize) -> f64 {
        let k = self.free_at.len();
        let thrash = (streams.max(1) as f64 / k as f64).max(1.0);
        let service = self.model.seek_time * thrash + bytes as f64 / self.model.bandwidth;
        // Earliest-free disk; ties broken by index for determinism.
        let (disk, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.partial_cmp(b).unwrap().then(i.cmp(j)))
            .expect("at least one disk");
        let start = self.free_at[disk].max(now);
        let end = start + service;
        self.free_at[disk] = end;
        self.stats.requests += 1;
        self.stats.bytes += bytes;
        self.stats.busy_time += service;
        self.stats.queue_time += start - now;
        end
    }

    /// Mean outstanding work per disk at time `now`, in seconds — the
    /// congestion signal consumed by I/O-aware scheduling policies
    /// (paper §6, extension (3): "incorporation of low level metrics …
    /// into the query scheduling model").
    pub fn backlog(&self, now: f64) -> f64 {
        self.free_at
            .iter()
            .map(|&f| (f - now).max(0.0))
            .sum::<f64>()
            / self.free_at.len() as f64
    }

    /// Time at which some disk becomes idle.
    pub fn free_at(&self) -> f64 {
        self.free_at.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Mean per-disk utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.stats.busy_time / (horizon * self.free_at.len() as f64)).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskQueue {
        DiskQueue::new(DiskModel::new(0.01, 1000.0))
    }

    #[test]
    fn idle_disk_services_immediately() {
        let mut d = disk();
        let end = d.submit(5.0, 1000);
        assert!((end - (5.0 + 0.01 + 1.0)).abs() < 1e-12);
        assert_eq!(d.stats().queue_time, 0.0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = disk();
        let e1 = d.submit(0.0, 1000); // ends at 1.01
        let e2 = d.submit(0.0, 1000); // queues behind, ends at 2.02
        assert!(e2 > e1);
        assert!((e2 - 2.02).abs() < 1e-12);
        assert!((d.stats().queue_time - 1.01).abs() < 1e-12);
    }

    #[test]
    fn later_arrival_after_idle_gap() {
        let mut d = disk();
        d.submit(0.0, 1000);
        // Arrives after the disk went idle.
        let end = d.submit(10.0, 0);
        assert!((end - 10.01).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_streams_pay_extra_seeks() {
        let mut a = disk();
        let mut b = disk();
        let e1 = a.submit_streams(0.0, 1000, 1);
        let e8 = b.submit_streams(0.0, 1000, 8);
        assert!((e8 - e1 - 0.07).abs() < 1e-12, "8x thrash on one disk");
        // Zero streams clamps to one.
        let mut c = disk();
        assert_eq!(c.submit_streams(0.0, 0, 0), 0.01);
    }

    #[test]
    fn farm_parallelizes_up_to_server_count() {
        let mut farm = DiskQueue::with_servers(DiskModel::new(0.01, 1000.0), 4);
        assert_eq!(farm.servers(), 4);
        // Four requests at t=0 all finish at the single-request time.
        let ends: Vec<f64> = (0..4).map(|_| farm.submit_streams(0.0, 1000, 4)).collect();
        for e in &ends {
            assert!((e - 1.01).abs() < 1e-12);
        }
        // The fifth queues behind one of them.
        let e5 = farm.submit_streams(0.0, 1000, 4);
        assert!(e5 > 2.0);
    }

    #[test]
    fn farm_absorbs_streams_up_to_parallelism_without_thrash() {
        let mut farm = DiskQueue::with_servers(DiskModel::new(0.01, 1000.0), 4);
        // 4 streams on 4 disks: no thrash multiplier.
        let e = farm.submit_streams(0.0, 1000, 4);
        assert!((e - 1.01).abs() < 1e-12);
        // 8 streams on 4 disks: 2x seek.
        let mut farm2 = DiskQueue::with_servers(DiskModel::new(0.01, 1000.0), 4);
        let e2 = farm2.submit_streams(0.0, 1000, 8);
        assert!((e2 - 1.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_servers_rejected() {
        DiskQueue::with_servers(DiskModel::circa_2002(), 0);
    }

    #[test]
    fn backlog_measures_outstanding_work() {
        let mut d = DiskQueue::with_servers(DiskModel::new(0.0, 1000.0), 2);
        assert_eq!(d.backlog(0.0), 0.0);
        d.submit(0.0, 1000); // 1 s on disk 0
        assert!((d.backlog(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.backlog(10.0), 0.0); // long past completion
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        d.submit(0.0, 500);
        d.submit(0.0, 500);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 1000);
        assert!((s.busy_time - 1.02).abs() < 1e-12);
        assert!(d.utilization(2.0) > 0.5);
        assert_eq!(d.utilization(0.0), 0.0);
    }
}
