//! Schedule traces: a per-event log of a simulation run, for debugging
//! schedules and producing Gantt-style visualizations of what each
//! strategy actually did.

use vmqs_core::QueryId;

/// What happened to a query.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceKind {
    /// Submitted by its client (entered WAITING).
    Arrive,
    /// Dequeued into a thread slot (entered EXECUTING).
    Start,
    /// Blocked on an EXECUTING dependency.
    Block {
        /// The query being waited on.
        on: QueryId,
    },
    /// Began (or resumed) actual execution.
    Resume,
    /// Finished (entered CACHED).
    Complete,
    /// Result evicted from the Data Store (entered SWAPPED_OUT).
    SwapOut,
}

impl TraceKind {
    /// Short machine-friendly label.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Arrive => "arrive",
            TraceKind::Start => "start",
            TraceKind::Block { .. } => "block",
            TraceKind::Resume => "resume",
            TraceKind::Complete => "complete",
            TraceKind::SwapOut => "swap_out",
        }
    }
}

/// One trace record.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: f64,
    /// The query involved.
    pub query: QueryId,
    /// What happened.
    pub kind: TraceKind,
}

/// Renders a trace as CSV (`time,query,event,detail`).
pub fn trace_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time_s,query,event,detail\n");
    for e in events {
        let detail = match e.kind {
            TraceKind::Block { on } => on.to_string(),
            _ => String::new(),
        };
        out.push_str(&format!(
            "{:.6},{},{},{}\n",
            e.time,
            e.query,
            e.kind.label(),
            detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let events = [
            TraceEvent {
                time: 0.0,
                query: QueryId(1),
                kind: TraceKind::Arrive,
            },
            TraceEvent {
                time: 0.5,
                query: QueryId(1),
                kind: TraceKind::Block { on: QueryId(0) },
            },
        ];
        let csv = trace_to_csv(&events);
        assert!(csv.starts_with("time_s,query,event,detail\n"));
        assert!(csv.contains("0.000000,q1,arrive,\n"));
        assert!(csv.contains("0.500000,q1,block,q0\n"));
    }

    #[test]
    fn labels_cover_all_kinds() {
        let kinds = [
            TraceKind::Arrive,
            TraceKind::Start,
            TraceKind::Block { on: QueryId(0) },
            TraceKind::Resume,
            TraceKind::Complete,
            TraceKind::SwapOut,
        ];
        let labels: std::collections::HashSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
