//! The discrete-event simulation engine.
//!
//! Drives the *same* scheduling graph, Data Store, and page-cache cores as
//! the threaded server, but in virtual time against analytic disk/CPU cost
//! models — reproducing the paper-scale experiments (24 query threads,
//! 7.5 GB of slides, 2002-era disks) deterministically in milliseconds on
//! any machine.
//!
//! The engine is generic over a [`SimApplication`]: the Virtual Microscope
//! adapter is [`crate::VmSimApp`] (with `Simulator::new` / [`run_sim`] as
//! VM-typed conveniences); the 3-D volume visualization application of the
//! paper's §6 plugs in the same way.
//!
//! Execution model per query (mirrors `vmqs-server`):
//! dequeue → optional block on an EXECUTING reuse source → Data Store
//! lookup → project cached coverage (CPU) → remainder I/O through the page
//! cache and the disk-farm queue → kernel CPU time → commit to the Data
//! Store. Queries occupy one of the `threads` slots from dequeue to
//! completion, including while blocked — exactly like a real pool thread.

use crate::app::SimApplication;
use crate::config::{ClientStream, SchedPolicy, SimConfig, SubmissionMode, TunerConfig};
use crate::disk::DiskQueue;
use crate::events::{Event, EventQueue};
use crate::report::{SimRecord, SimReport};
use crate::trace::{TraceEvent, TraceKind};
use crate::vm::VmSimApp;
use std::collections::{HashMap, HashSet};
use vmqs_core::{
    shed_victim, BlobId, ClientId, IdGen, PressureSignals, QueryId, QuerySpec, QueryState,
    SchedulingGraph, Strategy, TokenBucket,
};
use vmqs_datastore::{EvictionRecord, Payload, SpatialDataStore};
use vmqs_microscope::PAGE_SIZE;
use vmqs_obs::{EventKind, Obs, PageMetrics, QueryMetrics};
use vmqs_pagespace::{PageCacheCore, PageData, PageDisposition, PageKey};
use vmqs_storage::SPILL_DEVICE;

struct QInfo<S> {
    client: ClientId,
    spec: S,
    arrival: f64,
    start: f64,
    blocked_since: Option<f64>,
    blocked_total: f64,
}

/// Hill-climbing state for the §6 self-tuning controller.
struct Tuner {
    cfg: TunerConfig,
    direction: f64,
    window_sum: f64,
    window_count: usize,
    prev_metric: Option<f64>,
    /// History of `(virtual time, parameter value)` after each adjustment.
    history: Vec<(f64, f64)>,
}

impl Tuner {
    fn new(cfg: TunerConfig) -> Self {
        Tuner {
            cfg,
            direction: 1.0,
            window_sum: 0.0,
            window_count: 0,
            prev_metric: None,
            history: Vec::new(),
        }
    }

    /// Records one completion; returns the parameter multiplier to apply
    /// when a window just closed.
    fn observe(&mut self, response_time: f64) -> Option<f64> {
        self.window_sum += response_time;
        self.window_count += 1;
        if self.window_count < self.cfg.window {
            return None;
        }
        let metric = self.window_sum / self.window_count as f64;
        self.window_sum = 0.0;
        self.window_count = 0;
        if let Some(prev) = self.prev_metric {
            if metric > prev {
                // Got worse: reverse course.
                self.direction = -self.direction;
            }
        }
        self.prev_metric = Some(metric);
        Some(if self.direction > 0.0 {
            self.cfg.step
        } else {
            1.0 / self.cfg.step
        })
    }
}

/// Applies a tuning multiplier to a parameterized strategy's continuous
/// knob; returns `None` for strategies with nothing to tune.
fn tuned_strategy(current: Strategy, factor: f64) -> Option<(Strategy, f64)> {
    match current {
        Strategy::Hybrid {
            cnbf_weight,
            sjf_weight,
        } => {
            let w = (sjf_weight * factor).clamp(1e-3, 1e3);
            Some((
                Strategy::Hybrid {
                    cnbf_weight,
                    sjf_weight: w,
                },
                w,
            ))
        }
        Strategy::ClosestFirst { alpha } => {
            let a = (alpha * factor).clamp(0.0, 1.0);
            Some((Strategy::ClosestFirst { alpha: a }, a))
        }
        _ => None,
    }
}

/// The simulator. Construct with [`Simulator::new`] (Virtual Microscope)
/// or [`Simulator::with_app`] (any [`SimApplication`]), then
/// [`Simulator::run`].
pub struct Simulator<A: SimApplication> {
    cfg: SimConfig,
    app: A,
    graph: SchedulingGraph<A::Spec>,
    ds: SpatialDataStore<A::Spec>,
    ps: PageCacheCore,
    page_ready: HashMap<PageKey, f64>,
    disk: DiskQueue,
    events: EventQueue<A::Spec>,
    idgen: IdGen,
    busy_slots: usize,
    blocked_count: usize,
    blob_of: HashMap<QueryId, BlobId>,
    qinfo: HashMap<QueryId, QInfo<A::Spec>>,
    /// Metrics computed at resume time, consumed at completion:
    /// `(covered_fraction, reused_bytes, io_time, cpu_time, exact_hit)`.
    pending_metrics: HashMap<QueryId, (f64, u64, f64, f64, bool)>,
    waiters: HashMap<QueryId, Vec<QueryId>>,
    /// Graft subscriptions: consumer → EXECUTING producer computing the
    /// same predicate. Installed at dequeue, consumed at the consumer's
    /// resume (DESIGN.md §13). Empty unless `cfg.graft`.
    graft_of: HashMap<QueryId, QueryId>,
    /// Consumers that answered by grafting; consumed into the record at
    /// completion.
    grafted_ids: HashSet<QueryId>,
    grafted: u64,
    streams: HashMap<ClientId, Vec<A::Spec>>,
    client_pos: HashMap<ClientId, usize>,
    records: Vec<SimRecord<A::Spec>>,
    makespan: f64,
    tuner: Option<Tuner>,
    policy_overrides: u64,
    trace: Vec<TraceEvent>,
    io_faults: u64,
    io_retries: u64,
    spilled: u64,
    restored: u64,
    restore_failures: u64,
    recomputed_bytes: u64,
    /// Per-client token buckets for the admission rate limiter, refilled
    /// in virtual time (the threaded engine refills the same bucket code
    /// in real time).
    buckets: HashMap<ClientId, TokenBucket>,
    /// Queries downgraded at admission; consumed into the record at
    /// completion.
    degraded_ids: HashSet<QueryId>,
    rejected: u64,
    shed: u64,
    degraded: u64,
    /// Global compute ordinal — the chaos injector's panic-at-nth
    /// coordinate, counted exactly like the threaded engine's
    /// `Core::compute_seq` (every entry into the compute stage).
    compute_seq: u64,
    /// Per-query panic attempts (the quarantine counter).
    quarantine: HashMap<QueryId, u32>,
    /// Replacement virtual workers still allowed, counting down from
    /// [`SimConfig::restart_budget`].
    restarts_left: usize,
    /// Worker slots retired for good (a panic with no restart budget
    /// left). Capacity is `cfg.threads - dead_workers`.
    dead_workers: usize,
    /// Set when every worker slot has been retired: WAITING queries are
    /// failed typed-ly and later arrivals are refused.
    pool_dead: bool,
    failed: u64,
    timed_out: u64,
    worker_panics: u64,
    worker_restarts: u64,
    quarantined: u64,
    hung: u64,
    /// Event log + metrics registry; events stamped with *virtual* time
    /// via `log_at`, using the same schema as the threaded engine so the
    /// conformance harness can compare the two (DESIGN.md §9).
    obs: Obs,
    qmet: QueryMetrics,
    pmet: PageMetrics,
}

impl Simulator<VmSimApp> {
    /// Creates a Virtual Microscope simulator (cost model taken from
    /// `cfg.cost`).
    pub fn new(cfg: SimConfig, workload: Vec<ClientStream>) -> Self {
        Simulator::with_app(cfg, VmSimApp::new(cfg.cost), workload)
    }
}

impl<A: SimApplication> Simulator<A> {
    /// Creates a simulator for any application adapter.
    pub fn with_app(cfg: SimConfig, app: A, workload: Vec<ClientStream<A::Spec>>) -> Self {
        let mut events = EventQueue::new();
        let mut streams = HashMap::new();
        let mut client_pos = HashMap::new();
        for cs in workload {
            match cfg.mode {
                SubmissionMode::Interactive => {
                    if let Some(first) = cs.queries.first() {
                        events.push(
                            0.0,
                            Event::Arrival {
                                client: cs.client,
                                spec: *first,
                                seq_in_client: 0,
                            },
                        );
                    }
                    client_pos.insert(cs.client, 0);
                }
                SubmissionMode::Batch => {
                    for (i, q) in cs.queries.iter().enumerate() {
                        events.push(
                            0.0,
                            Event::Arrival {
                                client: cs.client,
                                spec: *q,
                                seq_in_client: i,
                            },
                        );
                    }
                }
            }
            streams.insert(cs.client, cs.queries);
        }
        let obs = Obs::new(cfg.observe);
        let qmet = QueryMetrics::resolve(&obs.metrics);
        let pmet = PageMetrics::resolve(&obs.metrics);
        Simulator {
            app,
            graph: SchedulingGraph::new(cfg.strategy),
            ds: SpatialDataStore::with_policy(cfg.ds_budget, cfg.index_cell, cfg.ds_policy)
                .with_tier2(cfg.tier2_budget),
            ps: PageCacheCore::new(cfg.ps_budget, PAGE_SIZE as u64),
            page_ready: HashMap::new(),
            disk: DiskQueue::with_servers(cfg.disk, cfg.n_disks),
            events,
            idgen: IdGen::new(0),
            busy_slots: 0,
            blocked_count: 0,
            blob_of: HashMap::new(),
            qinfo: HashMap::new(),
            pending_metrics: HashMap::new(),
            waiters: HashMap::new(),
            graft_of: HashMap::new(),
            grafted_ids: HashSet::new(),
            grafted: 0,
            streams,
            client_pos,
            records: Vec::new(),
            makespan: 0.0,
            tuner: cfg.tuner.map(Tuner::new),
            policy_overrides: 0,
            trace: Vec::new(),
            io_faults: 0,
            io_retries: 0,
            spilled: 0,
            restored: 0,
            restore_failures: 0,
            recomputed_bytes: 0,
            buckets: HashMap::new(),
            degraded_ids: HashSet::new(),
            rejected: 0,
            shed: 0,
            degraded: 0,
            compute_seq: 0,
            quarantine: HashMap::new(),
            restarts_left: cfg.restart_budget,
            dead_workers: 0,
            pool_dead: false,
            failed: 0,
            timed_out: 0,
            worker_panics: 0,
            worker_restarts: 0,
            quarantined: 0,
            hung: 0,
            obs,
            qmet,
            pmet,
            cfg,
        }
    }

    /// Disables Page Space run merging (ablation knob).
    pub fn set_ps_merging(&mut self, enabled: bool) {
        self.ps.set_merging(enabled);
    }

    /// Times the I/O-aware policy overrode the rank order.
    pub fn policy_overrides(&self) -> u64 {
        self.policy_overrides
    }

    /// The self-tuner's parameter trajectory (`(virtual time, value)`
    /// pairs), empty when tuning is off.
    pub fn tuner_history(&self) -> &[(f64, f64)] {
        self.tuner
            .as_ref()
            .map(|t| t.history.as_slice())
            .unwrap_or(&[])
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport<A::Spec> {
        while let Some((now, event)) = self.events.pop() {
            match event {
                Event::Arrival { client, spec, .. } => {
                    // Batch-start gate: while more arrivals are pending at
                    // this same instant, only insert — the first dequeue
                    // happens once the whole batch is in the graph, just
                    // like a paused threaded pool being resumed.
                    let defer = self.cfg.gate_batch_start
                        && matches!(
                            self.events.peek(),
                            Some((t, Event::Arrival { .. })) if t == now
                        );
                    self.on_arrival(now, client, spec, defer)
                }
                Event::Resume { id } => self.on_resume(now, id),
                Event::Completion { id } => self.on_completion(now, id),
                Event::HangDeadline { id } => self.on_hang_deadline(now, id),
            }
        }
        let ds_stats = self.ds.stats();
        let lookups = ds_stats.exact_hits + ds_stats.partial_hits + ds_stats.misses;
        self.obs.metrics.set_gauge(
            "vmqs_ds_hit_ratio",
            if lookups == 0 {
                0.0
            } else {
                (ds_stats.exact_hits + ds_stats.partial_hits) as f64 / lookups as f64
            },
        );
        let ps_stats = self.ps.stats();
        self.obs.metrics.set_gauge(
            "vmqs_ps_merge_ratio",
            if ps_stats.pages_fetched == 0 {
                0.0
            } else {
                1.0 - ps_stats.runs_issued as f64 / ps_stats.pages_fetched as f64
            },
        );
        SimReport {
            records: self.records,
            makespan: self.makespan,
            ds_stats,
            ps_stats,
            graph_stats: self.graph.stats(),
            disk_stats: self.disk.stats(),
            trace: self.trace,
            io_faults: self.io_faults,
            io_retries: self.io_retries,
            events: self.obs.log.snapshot(),
            metrics: self.obs.metrics.snapshot(),
            rejected: self.rejected,
            shed: self.shed,
            degraded: self.degraded,
            grafted: self.grafted,
            spilled: self.spilled,
            restored: self.restored,
            restore_failures: self.restore_failures,
            recomputed_bytes: self.recomputed_bytes,
            failed: self.failed,
            timed_out: self.timed_out,
            worker_panics: self.worker_panics,
            worker_restarts: self.worker_restarts,
            quarantined: self.quarantined,
            hung: self.hung,
        }
    }

    #[inline]
    fn trace(&mut self, time: f64, query: QueryId, kind: TraceKind) {
        if self.cfg.trace {
            self.trace.push(TraceEvent { time, query, kind });
        }
    }

    fn on_arrival(&mut self, now: f64, client: ClientId, spec: A::Spec, defer_start: bool) {
        // The id is assigned before the admission decision, exactly like
        // the threaded engine — a rejected query still consumes an id, so
        // id sequences stay comparable across engines.
        let id = self.idgen.next_query();
        self.trace(now, id, TraceKind::Arrive);
        // A dead pool refuses synchronously: the query is acknowledged
        // (Submitted) and immediately failed, exactly like the threaded
        // engine's `submit_from` once `pool_dead` is set.
        if self.pool_dead {
            self.qmet.submitted.inc();
            self.obs.log.log_at(now, id, EventKind::Submitted);
            self.failed += 1;
            self.qmet.failed.inc();
            self.obs.log.log_at(now, id, EventKind::Failed);
            self.advance_client(now, client);
            return;
        }
        let ov = self.cfg.overload;
        if !ov.enabled() {
            // Fast path: identical to the pre-overload arrival.
            self.graph.insert(id, spec);
            self.obs.log.log_at(now, id, EventKind::Submitted);
            self.qmet.submitted.inc();
            self.insert_qinfo(id, client, spec, now);
            if !defer_start {
                self.try_start(now);
            }
            return;
        }

        // The same admission ladder as `QueryServer::submit_from`, run in
        // virtual time: rate limit → bounded queue → degrade → shed, with
        // events emitted in the canonical order (Submitted, [Degraded |
        // Rejected], then Shed per victim) so the conformance harness can
        // pin the decision trace across engines.
        let (ds_occupancy, ps_miss_ratio, retry_ratio) = self.pressure_secondary();
        let signals = |depth: usize| PressureSignals {
            queue_depth: depth,
            max_pending: ov.max_pending,
            ds_occupancy,
            ps_miss_ratio,
            retry_ratio,
        };
        enum Decision {
            Admitted { degraded: bool },
            Rejected { rate_limited: bool },
        }
        let depth = self.graph.waiting_len();
        let mut observed_level = signals(depth).level();
        let mut shed_out: Vec<(QueryId, ClientId, f64)> = Vec::new();
        let over_rate = ov.client_rate > 0.0
            && !self
                .buckets
                .entry(client)
                .or_insert_with(|| TokenBucket::new(ov.client_rate))
                .try_take(now);
        let decision = if over_rate {
            Decision::Rejected { rate_limited: true }
        } else if ov.max_pending > 0 && depth >= ov.max_pending {
            Decision::Rejected {
                rate_limited: false,
            }
        } else {
            let mut level = signals(depth + 1).level();
            let mut spec = spec;
            let mut degraded = false;
            if level >= ov.degrade_threshold {
                if let Some(cheaper) = self.app.degrade(&spec) {
                    spec = cheaper;
                    degraded = true;
                }
            }
            self.graph.insert(id, spec);
            self.insert_qinfo(id, client, spec, now);
            if degraded {
                self.degraded_ids.insert(id);
            }
            // Shed the largest-`qinputsize` WAITING queries (newest first
            // on ties) until pressure drops below the threshold; the
            // victim may be the query just admitted.
            while level >= ov.shed_threshold && self.graph.waiting_len() > 0 {
                let victim = shed_victim(
                    self.graph
                        .ids_in_state(QueryState::Waiting)
                        .into_iter()
                        .map(|q| {
                            (
                                q,
                                self.graph.qinputsize_of(q).unwrap_or(0),
                                self.graph.arrival_of(q).unwrap_or(0),
                            )
                        }),
                );
                let Some(vid) = victim else { break };
                self.graph.dequeue_specific(vid);
                self.graph.mark_cached(vid);
                self.graph.swap_out(vid);
                self.degraded_ids.remove(&vid);
                let vinfo = self.qinfo.remove(&vid).expect("shed victim has info");
                shed_out.push((vid, vinfo.client, level));
                level = signals(self.graph.waiting_len()).level();
            }
            observed_level = level;
            Decision::Admitted { degraded }
        };

        self.qmet.submitted.inc();
        self.obs.log.log_at(now, id, EventKind::Submitted);
        self.obs.metrics.set_gauge("vmqs_pressure", observed_level);
        match decision {
            Decision::Admitted { degraded } => {
                if degraded {
                    self.degraded += 1;
                    self.qmet.degraded.inc();
                    self.obs.log.log_at(now, id, EventKind::Degraded);
                }
            }
            Decision::Rejected { rate_limited } => {
                self.rejected += 1;
                self.qmet.rejected.inc();
                self.obs
                    .log
                    .log_at(now, id, EventKind::Rejected { rate_limited });
                // The refusal is the client's answer: an interactive
                // client moves on to its next query.
                self.advance_client(now, client);
            }
        }
        for (vid, vclient, _level) in shed_out {
            self.shed += 1;
            self.qmet.shed.inc();
            self.obs.log.log_at(now, vid, EventKind::Shed);
            self.advance_client(now, vclient);
        }
        if !defer_start {
            self.try_start(now);
        }
    }

    fn insert_qinfo(&mut self, id: QueryId, client: ClientId, spec: A::Spec, now: f64) {
        self.qinfo.insert(
            id,
            QInfo {
                client,
                spec,
                arrival: now,
                start: f64::NAN,
                blocked_since: None,
                blocked_total: 0.0,
            },
        );
    }

    /// The pressure monitor's secondary inputs — Data Store occupancy and
    /// Page Space miss/retry ratios — computed the same way as the
    /// threaded engine's `Core::pressure_secondary`.
    fn pressure_secondary(&self) -> (f64, f64, f64) {
        let budget = self.ds.budget();
        let ds_occupancy = if budget == 0 {
            0.0
        } else {
            self.ds.used() as f64 / budget as f64
        };
        let ps = self.ps.stats();
        let lookups = ps.hits + ps.misses;
        let ps_miss_ratio = if lookups == 0 {
            0.0
        } else {
            ps.misses as f64 / lookups as f64
        };
        let reads = ps.pages_fetched + ps.read_retries;
        let retry_ratio = if reads == 0 {
            0.0
        } else {
            ps.read_retries as f64 / reads as f64
        };
        (ds_occupancy, ps_miss_ratio, retry_ratio)
    }

    /// Interactive clients submit their next query once the previous one
    /// is answered — by completion, rejection, or shedding.
    fn advance_client(&mut self, now: f64, client: ClientId) {
        if self.cfg.mode != SubmissionMode::Interactive {
            return;
        }
        if let Some(pos) = self.client_pos.get_mut(&client) {
            *pos += 1;
            let next = self.streams[&client].get(*pos).copied();
            if let Some(spec) = next {
                let seq = *pos;
                self.events.push(
                    now + self.cfg.think_time,
                    Event::Arrival {
                        client,
                        spec,
                        seq_in_client: seq,
                    },
                );
            }
        }
    }

    /// Picks the next query to start under the configured dequeue policy.
    fn pick_next(&mut self, now: f64) -> Option<QueryId> {
        match self.cfg.policy {
            // With grafting on, walk from the top-ranked query to its
            // earliest-arrived full-coverage WAITING producer so a consumer
            // never starts ahead of the query it would graft onto — the
            // same dequeue order as the threaded engine's `try_dequeue`.
            SchedPolicy::RankOrder if self.cfg.graft => self.graph.dequeue_preferring_producer(),
            SchedPolicy::RankOrder => self.graph.dequeue(),
            SchedPolicy::IoAware {
                candidates,
                backlog_threshold,
            } => {
                if self.disk.backlog(now) > backlog_threshold {
                    // Disk congested: among the top-ranked candidates,
                    // start the one that scans the least data.
                    let top = self.graph.peek_top_k(candidates.max(1));
                    let lightest = top
                        .iter()
                        .min_by_key(|(id, _)| {
                            (self.graph.qinputsize_of(*id).unwrap_or(u64::MAX), *id)
                        })
                        .map(|&(id, _)| id)?;
                    if Some(lightest) != top.first().map(|&(id, _)| id) {
                        self.policy_overrides += 1;
                    }
                    let ok = self.graph.dequeue_specific(lightest);
                    debug_assert!(ok);
                    Some(lightest)
                } else {
                    self.graph.dequeue()
                }
            }
        }
    }

    fn try_start(&mut self, now: f64) {
        // Panics with no restart budget left retire their worker slot.
        let capacity = self.cfg.threads - self.dead_workers;
        while self.busy_slots < capacity && self.graph.waiting_len() > 0 {
            let id = match self.pick_next(now) {
                Some(id) => id,
                None => break,
            };
            self.busy_slots += 1;
            self.trace(now, id, TraceKind::Start);
            // The rank the scheduler chose the query by, frozen at dequeue
            // — same emission point as the threaded engine's worker loop.
            let score = self.graph.rank_of(id).map_or(0.0, |r| r.value());
            self.obs.log.log_at(
                now,
                id,
                EventKind::Ranked {
                    strategy: self.cfg.strategy.name(),
                    score,
                },
            );
            let info = self.qinfo.get_mut(&id).expect("qinfo for dequeued query");
            info.start = now;
            self.qmet.queue_wait.observe(now - info.arrival);
            // Arm the hang watchdog for this execution span. The deadline
            // event carries no span marker: on firing it re-derives the
            // armed time from `info.start`, so a span that ended (or was
            // requeued) leaves the stale deadline inert.
            if let Some(h) = self.cfg.hang_timeout {
                self.events.push(now + h, Event::HangDeadline { id });
            }

            // Grafting (DESIGN.md §13): an EXECUTING peer computing this
            // exact predicate is a producer to subscribe to — the consumer
            // waits like a blocked query but consumes the published result
            // at resume instead of performing its own lookup. Independent
            // of `allow_blocking`, mirroring the threaded engine.
            let spec = self.qinfo[&id].spec;
            let graft_src = if self.cfg.graft {
                self.graph
                    .reuse_sources(id)
                    .into_iter()
                    .filter(|e| self.graph.state_of(e.peer) == Some(QueryState::Executing))
                    .find(|e| self.qinfo.get(&e.peer).is_some_and(|p| p.spec.cmp(&spec)))
                    .map(|e| e.peer)
            } else {
                None
            };
            if let Some(p) = graft_src {
                self.graft_of.insert(id, p);
            }
            // Deadlock-free blocking: a query only ever blocks on a query
            // that started executing earlier, so wait-for edges cannot
            // cycle (see vmqs-server for the racy-threads variant that
            // needs an explicit cycle check).
            let dep = graft_src.or_else(|| {
                if self.cfg.allow_blocking {
                    self.graph
                        .reuse_sources(id)
                        .into_iter()
                        .find(|e| self.graph.state_of(e.peer) == Some(QueryState::Executing))
                        .map(|e| e.peer)
                } else {
                    None
                }
            });
            match dep {
                Some(dep) => {
                    self.trace(now, id, TraceKind::Block { on: dep });
                    self.qinfo.get_mut(&id).unwrap().blocked_since = Some(now);
                    self.blocked_count += 1;
                    self.waiters.entry(dep).or_default().push(id);
                }
                None => self.events.push(now, Event::Resume { id }),
            }
        }
    }

    fn on_resume(&mut self, now: f64, id: QueryId) {
        // A stale resume: the query was cancelled (hung) between the wake
        // being scheduled and processed.
        if !self.qinfo.contains_key(&id) {
            return;
        }
        self.trace(now, id, TraceKind::Resume);
        let spec = self.qinfo[&id].spec;

        // Grafted consumer: the producer it subscribed to has published.
        // Consume the result directly — no Data Store lookup (and no
        // lookup stats), no I/O, no kernel time; just the answer, exactly
        // like the threaded engine's `AnswerPath::Grafted`. If the
        // producer's entry never materialized (insert rejected or already
        // evicted), fall through to the normal path and compute.
        if let Some(producer) = self.graft_of.remove(&id) {
            if self.ds.has_equivalent(&spec) {
                self.obs
                    .log
                    .log_at(now, id, EventKind::Grafted { producer });
                self.grafted += 1;
                self.grafted_ids.insert(id);
                self.pending_metrics
                    .insert(id, (1.0, spec.qoutsize(), 0.0, 0.0, false));
                self.events.push(now, Event::Completion { id });
                return;
            }
        }

        // Data Store lookup (virtual payloads: metadata only).
        let matches = self.ds.lookup(&spec);
        if self.obs.log.enabled() {
            // Same loop shape as the threaded engine's lookup: first
            // `cmp`-equal match is the exact source, the rest are partial.
            let mut exact_taken = false;
            for m in &matches {
                if let Some(e) = self.ds.get(m.blob) {
                    let is_exact = !exact_taken && e.spec.cmp(&spec);
                    exact_taken |= is_exact;
                    self.obs.log.log_at(
                        now,
                        id,
                        EventKind::LookupHit {
                            source: m.producer,
                            overlap: m.overlap,
                            exact: is_exact,
                        },
                    );
                }
            }
        }
        let exact = matches
            .iter()
            .find(|m| self.ds.get(m.blob).is_some_and(|e| e.spec.cmp(&spec)));
        if let Some(m) = exact {
            let reused = m.reuse_bytes;
            let cpu = self.app.planning_seconds();
            self.qmet.ds_exact_hits.inc();
            self.pending_metrics
                .insert(id, (1.0, reused, 0.0, cpu, true));
            self.events.push(now + cpu, Event::Completion { id });
            return;
        }

        // Tier-2 re-heat (DESIGN.md §14): a spilled entry `cmp`-matching
        // this query restores at one virtual disk service time instead of
        // recompute cost. Poisoned reads — drawn on the reserved spill
        // device, exactly like the threaded engine's frame reads — drop
        // the entry and fall through to recomputation.
        if self.cfg.tier2_budget > 0 {
            if let Some((blob, producer, size)) = self.ds.lookup_restorable_exact(&spec) {
                if self.cfg.fault.page_is_poisoned(SPILL_DEVICE, blob.raw()) {
                    self.restore_failures += 1;
                    if let Some(r) = self.ds.drop_restorable(blob) {
                        self.route_evictions(now, vec![r]);
                    }
                } else {
                    let mut evicted = Vec::new();
                    if self.ds.restore(blob, Payload::Virtual, &mut evicted) {
                        self.restored += 1;
                        self.qmet.ds_restores.inc();
                        self.route_evictions(now, evicted);
                        self.drain_spills(now);
                        self.obs
                            .log
                            .log_at(now, producer, EventKind::Restored { bytes: size });
                        self.obs.log.log_at(
                            now,
                            id,
                            EventKind::LookupHit {
                                source: producer,
                                overlap: 1.0,
                                exact: true,
                            },
                        );
                        let io = self.cfg.disk.service_time(size);
                        let cpu = self.app.planning_seconds();
                        self.pending_metrics
                            .insert(id, (1.0, spec.qoutsize(), io, cpu, true));
                        self.events.push(now + io + cpu, Event::Completion { id });
                        return;
                    }
                }
            }
        }

        // Chaos kill-point (DESIGN.md §15): entering the compute stage
        // advances the same global ordinal the threaded engine counts in
        // `Core::compute_seq`; a matching chaos plan kills this virtual
        // worker mid-compute instead of producing a result. The ordinal
        // advances whether or not a panic fires, keeping panic-at-nth
        // coordinates comparable across engines.
        let ordinal = self.compute_seq;
        self.compute_seq += 1;
        if self.cfg.chaos.compute_should_panic(ordinal, id.raw()) {
            self.on_worker_panic(now, id);
            return;
        }

        // Application-specific reuse planning over the cached candidates
        // (ordered most-reusable first by the lookup).
        let cached: Vec<A::Spec> = matches
            .iter()
            .filter_map(|m| self.ds.get(m.blob).map(|e| e.spec))
            .collect();
        let plan = self.app.plan(&spec, &cached);
        debug_assert!((0.0..=1.0 + 1e-9).contains(&plan.covered_fraction));

        // Remainder I/O through the page cache and the disk farm.
        let mut io_ready = now;
        if !plan.pages.is_empty() {
            let read = self.ps.plan_read(&plan.pages);
            self.pmet.page_reads.add(read.pages.len() as u64);
            let cached_pages = read
                .pages
                .iter()
                .filter(|(_, d)| *d != PageDisposition::MustFetch)
                .count();
            self.pmet.page_hits.add(cached_pages as u64);
            self.pmet.runs_issued.add(read.fetch_runs.len() as u64);
            let fetched: usize = read.fetch_runs.iter().map(|r| r.pages().count()).sum();
            self.pmet.pages_fetched.add(fetched as u64);
            if self.obs.log.enabled() {
                for _ in 0..cached_pages {
                    self.obs.log.log_at(
                        now,
                        id,
                        EventKind::PageRead {
                            cached: true,
                            retried: false,
                        },
                    );
                }
            }
            // Queries concurrently in their I/O phase interleave on the
            // disk; blocked queries hold a thread slot but issue no I/O.
            let streams = self.busy_slots.saturating_sub(self.blocked_count).max(1);
            for run in &read.fetch_runs {
                let end = self
                    .disk
                    .submit_streams(now, run.bytes(PAGE_SIZE as u64), streams);
                io_ready = io_ready.max(end);
                for page in run.pages() {
                    // Transient-fault model: charge each faulted page the
                    // retry latency the threaded engine would pay — one
                    // re-read service time plus the base backoff per
                    // retry. Streaks are capped at the retry budget; the
                    // final attempt is treated as successful (the virtual
                    // replay has no failure delivery path — see DESIGN.md
                    // §8).
                    let mut ready = end;
                    let mut retried = false;
                    if !self.cfg.fault.is_noop() {
                        let streak = self.cfg.fault.transient_streak(
                            page.dataset,
                            page.index,
                            self.cfg.retry.max_retries,
                        );
                        if streak > 0 {
                            retried = true;
                            self.io_faults += streak as u64;
                            self.io_retries += streak as u64;
                            self.pmet.read_faults.add(streak as u64);
                            self.pmet.read_retries.add(streak as u64);
                            let mut extra =
                                streak as f64 * self.cfg.disk.service_time(PAGE_SIZE as u64);
                            for a in 1..=streak {
                                extra += self.cfg.retry.base_backoff(a).as_secs_f64();
                            }
                            ready += extra;
                            io_ready = io_ready.max(ready);
                        }
                    }
                    self.obs.log.log_at(
                        now,
                        id,
                        EventKind::PageRead {
                            cached: false,
                            retried,
                        },
                    );
                    for evicted in self.ps.complete_fetch(page, PageData::Virtual) {
                        self.page_ready.remove(&evicted);
                    }
                    self.page_ready.insert(page, ready);
                }
            }
            // Pages resident (or fetched by another in-flight query) may
            // only become usable at a future ready time.
            for (page, _) in &read.pages {
                if let Some(&t) = self.page_ready.get(page) {
                    io_ready = io_ready.max(t);
                }
            }
        }

        let io_time = (io_ready - now).max(0.0);
        let cpu = self.app.planning_seconds()
            + self.app.project_seconds(plan.reused_bytes)
            + self.app.compute_seconds(&spec, plan.input_bytes);
        if plan.reused_bytes > 0 {
            self.qmet.ds_partial_hits.inc();
        } else {
            self.qmet.ds_misses.inc();
        }
        self.pending_metrics.insert(
            id,
            (
                plan.covered_fraction,
                plan.reused_bytes,
                io_time,
                cpu,
                false,
            ),
        );
        self.events
            .push(now + io_time + cpu, Event::Completion { id });
    }

    /// Routes Data Store eviction records: victims leave the scheduling
    /// graph as SWAPPED_OUT and emit `Evicted` events carrying the tier
    /// they were lost from and their final benefit score. Demotions to
    /// tier 2 are *not* evictions and never pass through here.
    fn route_evictions(&mut self, now: f64, evicted: Vec<EvictionRecord<A::Spec>>) {
        for r in evicted {
            self.trace(now, r.producer, TraceKind::SwapOut);
            self.blob_of.remove(&r.producer);
            self.graph.swap_out(r.producer);
            self.obs.log.log_at(
                now,
                r.producer,
                EventKind::Evicted {
                    tier: r.tier,
                    score: r.score,
                },
            );
            self.qmet.ds_evictions.inc();
        }
    }

    /// Accepts the Data Store's queued demotions. The virtual tier needs
    /// no frame write, so a demotion is just the `Spilled` event and the
    /// counters — the simulator's analog of the threaded engine's
    /// `drain_spills`. Producers stay CACHED in the scheduling graph: the
    /// data still exists, one disk read away.
    fn drain_spills(&mut self, now: f64) {
        for req in self.ds.take_pending_spills() {
            self.spilled += 1;
            self.qmet.ds_spills.inc();
            self.obs
                .log
                .log_at(now, req.producer, EventKind::Spilled { bytes: req.size });
        }
    }

    fn on_completion(&mut self, now: f64, id: QueryId) {
        // A stale completion: the query was cancelled (hung) between this
        // event being scheduled and processed.
        if !self.qinfo.contains_key(&id) {
            return;
        }
        self.trace(now, id, TraceKind::Complete);
        self.makespan = self.makespan.max(now);
        let info = self.qinfo.remove(&id).expect("completing query has info");
        // A successful publish clears any accumulated panic attempts —
        // same hygiene as the threaded engine's terminal sweep. Gated so
        // chaos-free runs never touch the map.
        if self.worker_panics > 0 {
            self.quarantine.remove(&id);
        }
        let (covered, reused, io, cpu, exact) = self
            .pending_metrics
            .remove(&id)
            .expect("metrics recorded at resume");

        // Output bytes this query had to produce by computation rather
        // than reuse — the cache-pressure sweep's headline metric.
        let out = info.spec.qoutsize();
        self.recomputed_bytes += out - reused.min(out);

        // Commit the result to the Data Store; evicted producers leave the
        // scheduling graph as SWAPPED_OUT. The measured recomputation cost
        // backing the benefit score is this query's virtual I/O + CPU time
        // — what an eviction would force a future identical query to pay.
        self.graph.mark_cached(id);
        let mut evicted = Vec::new();
        match self.ds.insert_costed(
            id,
            info.spec,
            info.spec.qoutsize(),
            io + cpu,
            Payload::Virtual,
            &mut evicted,
        ) {
            Ok(blob) => {
                self.blob_of.insert(id, blob);
            }
            Err(_) => {
                self.trace(now, id, TraceKind::SwapOut);
                self.graph.swap_out(id);
            }
        }
        self.route_evictions(now, evicted);
        self.drain_spills(now);
        self.qmet.completed.inc();
        self.qmet.service_time.observe(now - info.start);
        self.obs.log.log_at(now, id, EventKind::Completed);

        let record = SimRecord {
            id,
            client: info.client,
            spec: info.spec,
            arrival: info.arrival,
            start: info.start,
            finish: now,
            blocked: info.blocked_total,
            covered_fraction: covered,
            reused_bytes: reused,
            io_time: io,
            cpu_time: cpu,
            exact_hit: exact,
            grafted: self.grafted_ids.remove(&id),
            degraded: self.degraded_ids.remove(&id),
        };

        // §6 self-tuning: hill-climb the strategy's continuous parameter
        // on windowed mean response time.
        if let Some(tuner) = &mut self.tuner {
            if let Some(factor) = tuner.observe(record.response_time()) {
                if let Some((next, value)) = tuned_strategy(self.graph.strategy(), factor) {
                    self.graph.set_strategy(next);
                    tuner.history.push((now, value));
                }
            }
        }

        self.records.push(record);

        // Wake queries blocked on this one.
        if let Some(ws) = self.waiters.remove(&id) {
            for w in ws {
                if let Some(wi) = self.qinfo.get_mut(&w) {
                    if let Some(since) = wi.blocked_since.take() {
                        wi.blocked_total += now - since;
                        self.blocked_count -= 1;
                    }
                }
                self.events.push(now, Event::Resume { id: w });
            }
        }

        self.busy_slots -= 1;

        // Interactive clients submit their next query on completion.
        self.advance_client(now, info.client);

        self.try_start(now);
    }

    /// A virtual worker dies mid-compute (DESIGN.md §15). Mirrors the
    /// threaded engine's `handle_worker_panic` + `respawn_or_retire`:
    /// count and log the panic, bump the victim query's quarantine
    /// counter, wake anything blocked on it (the back-out aborts the Data
    /// Store reservation, so subscribers go compute for themselves), then
    /// either requeue the query for another attempt or fail it typed-ly
    /// — and finally respawn the worker from the restart budget or retire
    /// its slot for good.
    fn on_worker_panic(&mut self, now: f64, id: QueryId) {
        self.worker_panics += 1;
        self.qmet.worker_panics.inc();
        self.obs.log.log_at(now, id, EventKind::WorkerPanicked);

        let attempts = {
            let a = self.quarantine.entry(id).or_insert(0);
            *a += 1;
            *a
        };

        if let Some(ws) = self.waiters.remove(&id) {
            for w in ws {
                if let Some(wi) = self.qinfo.get_mut(&w) {
                    if let Some(since) = wi.blocked_since.take() {
                        wi.blocked_total += now - since;
                        self.blocked_count -= 1;
                    }
                }
                self.events.push(now, Event::Resume { id: w });
            }
        }

        let requeued = attempts < self.cfg.quarantine_limit && self.graph.requeue(id);
        if requeued {
            // Back to WAITING: this execution span is over, so a pending
            // hang deadline armed for it must come up inert (the start
            // reverts to NAN until the next dequeue).
            if let Some(info) = self.qinfo.get_mut(&id) {
                info.start = f64::NAN;
            }
            self.pending_metrics.remove(&id);
        } else {
            // Quarantine limit reached: fail the query typed-ly instead
            // of crash-looping the pool, with the same event order as the
            // threaded engine (Quarantined, then the terminal Failed).
            self.graph.mark_cached(id);
            self.graph.swap_out(id);
            self.quarantine.remove(&id);
            self.failed += 1;
            self.qmet.failed.inc();
            if attempts >= self.cfg.quarantine_limit {
                self.quarantined += 1;
                self.qmet.quarantined.inc();
                self.obs
                    .log
                    .log_at(now, id, EventKind::Quarantined { attempts });
            }
            self.obs.log.log_at(now, id, EventKind::Failed);
            let info = self.qinfo.remove(&id).expect("panicking query has info");
            self.pending_metrics.remove(&id);
            self.graft_of.remove(&id);
            self.grafted_ids.remove(&id);
            self.degraded_ids.remove(&id);
            self.advance_client(now, info.client);
        }

        // The worker slot died either way.
        self.busy_slots -= 1;
        if self.restarts_left > 0 {
            self.restarts_left -= 1;
            self.worker_restarts += 1;
            self.qmet.worker_restarts.inc();
            self.obs.log.log_at(now, id, EventKind::WorkerRestarted);
        } else {
            self.dead_workers += 1;
            if self.dead_workers >= self.cfg.threads {
                self.pool_dead = true;
                self.fail_all_waiting(now);
            }
        }
        self.try_start(now);
    }

    /// The hang watchdog's deadline fires (DESIGN.md §15). Valid only if
    /// the query is still in the exact execution span the deadline was
    /// armed for: it must still be EXECUTING and `now` must equal
    /// `start + hang_timeout` bit-for-bit (both sides are produced by the
    /// same addition, so a genuine match is exact). Stale deadlines — the
    /// span completed, panicked, or was requeued — are inert.
    fn on_hang_deadline(&mut self, now: f64, id: QueryId) {
        let Some(h) = self.cfg.hang_timeout else {
            return;
        };
        let Some(info) = self.qinfo.get(&id) else {
            return;
        };
        if self.graph.state_of(id) != Some(QueryState::Executing) || now != info.start + h {
            return;
        }
        // Hung first, then the terminal TimedOut — the watchdog folds
        // into the deadline machinery, same as the threaded engine.
        self.hung += 1;
        self.qmet.hung.inc();
        self.obs.log.log_at(now, id, EventKind::Hung);
        self.timed_out += 1;
        self.qmet.timed_out.inc();
        self.obs.log.log_at(now, id, EventKind::TimedOut);
        self.graph.mark_cached(id);
        self.graph.swap_out(id);
        // It can never publish: anything blocked on it computes for
        // itself.
        if let Some(ws) = self.waiters.remove(&id) {
            for w in ws {
                if let Some(wi) = self.qinfo.get_mut(&w) {
                    if let Some(since) = wi.blocked_since.take() {
                        wi.blocked_total += now - since;
                        self.blocked_count -= 1;
                    }
                }
                self.events.push(now, Event::Resume { id: w });
            }
        }
        // If the hung query was itself blocked on a peer, unhook it from
        // that peer's wake list.
        let info = self.qinfo.remove(&id).expect("hung query has info");
        if info.blocked_since.is_some() {
            self.blocked_count -= 1;
            for ws in self.waiters.values_mut() {
                ws.retain(|w| *w != id);
            }
        }
        self.pending_metrics.remove(&id);
        self.graft_of.remove(&id);
        self.grafted_ids.remove(&id);
        self.degraded_ids.remove(&id);
        self.quarantine.remove(&id);
        self.busy_slots -= 1;
        self.advance_client(now, info.client);
        self.try_start(now);
    }

    /// Every worker slot has been retired: WAITING queries can never
    /// start. Fail them typed-ly in id order — the same sweep as the
    /// threaded engine's `fail_all_waiting` on pool death.
    fn fail_all_waiting(&mut self, now: f64) {
        let mut waiting = self.graph.ids_in_state(QueryState::Waiting);
        waiting.sort();
        for id in waiting {
            let ok = self.graph.dequeue_specific(id);
            debug_assert!(ok, "waiting query must dequeue");
            self.graph.mark_cached(id);
            self.graph.swap_out(id);
            self.failed += 1;
            self.qmet.failed.inc();
            self.obs.log.log_at(now, id, EventKind::Failed);
            let info = self.qinfo.remove(&id).expect("waiting query has info");
            self.degraded_ids.remove(&id);
            self.advance_client(now, info.client);
        }
    }
}

/// Convenience: build and run a Virtual Microscope simulation in one call.
pub fn run_sim(cfg: SimConfig, workload: Vec<ClientStream>) -> SimReport {
    Simulator::new(cfg, workload).run()
}

/// Convenience: build and run a simulation for any application adapter.
pub fn run_sim_app<A: SimApplication>(
    cfg: SimConfig,
    app: A,
    workload: Vec<ClientStream<A::Spec>>,
) -> SimReport<A::Spec> {
    Simulator::with_app(cfg, app, workload).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, Rect};
    use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
    use vmqs_storage::DiskModel;

    fn slide() -> SlideDataset {
        SlideDataset::paper_scale(DatasetId(0))
    }

    fn q(x: u32, y: u32, side: u32, zoom: u32, op: VmOp) -> VmQuery {
        VmQuery::new(slide(), Rect::new(x, y, side, side), zoom, op)
    }

    fn one_client(queries: Vec<VmQuery>) -> Vec<ClientStream> {
        vec![ClientStream {
            client: ClientId(0),
            queries,
        }]
    }

    #[test]
    fn single_query_costs_io_plus_cpu() {
        let cfg = SimConfig::paper_baseline();
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let report = run_sim(cfg, one_client(vec![spec]));
        assert_eq!(report.records.len(), 1);
        let r = &report.records[0];
        assert!(r.io_time > 0.0, "must pay disk time");
        assert!(r.cpu_time > 0.0);
        assert!((r.finish - (r.io_time + r.cpu_time)).abs() < 1e-9);
        assert_eq!(r.covered_fraction, 0.0);
        // Subsampling is I/O-dominated.
        assert!(r.cpu_time < 0.2 * r.io_time);
    }

    #[test]
    fn average_op_is_cpu_balanced() {
        let cfg = SimConfig::paper_baseline();
        let spec = q(0, 0, 2048, 2, VmOp::Average);
        let report = run_sim(cfg, one_client(vec![spec]));
        let r = &report.records[0];
        // Compare CPU against total disk busy time (the farm services one
        // query's runs in parallel, so elapsed io_time is busy/n_disks).
        let ratio = r.cpu_time / report.disk_stats.busy_time;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "averaging CPU:I/O ratio {ratio} should be near 1"
        );
        assert!(r.io_time > 0.0 && r.cpu_time > r.io_time);
    }

    #[test]
    fn identical_repeat_is_exact_hit() {
        let cfg = SimConfig::paper_baseline();
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let report = run_sim(cfg, one_client(vec![spec, spec]));
        assert_eq!(report.records.len(), 2);
        let second = &report.records[1];
        assert!(second.exact_hit);
        assert_eq!(second.io_time, 0.0);
        assert!(second.exec_time() < report.records[0].exec_time() / 100.0);
        assert_eq!(report.ds_stats.exact_hits, 1);
    }

    #[test]
    fn caching_disabled_never_reuses() {
        let cfg = SimConfig::paper_baseline().with_ds_budget(0);
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let report = run_sim(cfg, one_client(vec![spec, spec]));
        assert!(report.records.iter().all(|r| !r.exact_hit));
        // The second run re-reads pages, but they are PS-cached; the DS
        // itself must have rejected both inserts.
        assert_eq!(report.ds_stats.rejected, 2);
    }

    #[test]
    fn partial_overlap_reduces_io() {
        let cfg = SimConfig::paper_baseline();
        let a = q(0, 0, 2048, 2, VmOp::Subsample);
        let b = q(1024, 0, 2048, 2, VmOp::Subsample); // half overlaps a
        let report = run_sim(cfg, one_client(vec![a, b]));
        let rb = &report.records[1];
        assert!(rb.covered_fraction > 0.4 && rb.covered_fraction < 0.6);
        assert!(rb.reused_bytes > 0);
        assert!(rb.io_time < report.records[0].io_time);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = SimConfig::paper_baseline().with_threads(3);
            let streams = (0..4)
                .map(|c| ClientStream {
                    client: ClientId(c),
                    queries: (0..5)
                        .map(|i| {
                            q(
                                (c as u32 * 700 + i * 512) % 20000,
                                (i * 911) % 20000,
                                2048,
                                1 << (i % 3),
                                if c % 2 == 0 {
                                    VmOp::Subsample
                                } else {
                                    VmOp::Average
                                },
                            )
                        })
                        .collect(),
                })
                .collect();
            run_sim(cfg, streams)
        };
        let r1 = mk();
        let r2 = mk();
        assert_eq!(r1.records.len(), r2.records.len());
        for (a, b) in r1.records.iter().zip(r2.records.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.finish, b.finish);
            assert_eq!(a.covered_fraction, b.covered_fraction);
        }
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn more_threads_speed_up_independent_clients() {
        let streams: Vec<ClientStream> = (0..4)
            .map(|c| ClientStream {
                client: ClientId(c),
                queries: vec![q(c as u32 * 5000, 0, 2048, 2, VmOp::Average)],
            })
            .collect();
        let r1 = run_sim(SimConfig::paper_baseline().with_threads(1), streams.clone());
        let r4 = run_sim(SimConfig::paper_baseline().with_threads(4), streams);
        assert!(
            r4.makespan < r1.makespan,
            "4 threads {} should beat 1 thread {}",
            r4.makespan,
            r1.makespan
        );
    }

    #[test]
    fn io_bound_workload_saturates_disk() {
        // Many threads on an I/O-bound workload: the disk queue grows.
        let streams: Vec<ClientStream> = (0..8)
            .map(|c| ClientStream {
                client: ClientId(c),
                queries: vec![q(c as u32 * 3000, 0, 4096, 4, VmOp::Subsample)],
            })
            .collect();
        let r = run_sim(SimConfig::paper_baseline().with_threads(8), streams);
        assert!(r.disk_stats.queue_time > 0.0);
        assert!(r.disk_stats.requests > 0);
    }

    #[test]
    fn blocking_waits_for_executing_dependency() {
        // Two clients, same window: with 2 threads the second query starts
        // while the first executes and should block, then reuse.
        let spec = q(0, 0, 2048, 2, VmOp::Subsample);
        let streams: Vec<ClientStream> = (0..2)
            .map(|c| ClientStream {
                client: ClientId(c),
                queries: vec![spec],
            })
            .collect();
        let r = run_sim(SimConfig::paper_baseline().with_threads(2), streams.clone());
        let blocked: Vec<_> = r.records.iter().filter(|x| x.blocked > 0.0).collect();
        assert_eq!(blocked.len(), 1);
        assert!(
            blocked[0].exact_hit,
            "after blocking, the result is reusable"
        );
        // With blocking disabled, nobody blocks and both do the I/O plan
        // (the page cache still dedups actual I/O).
        let r2 = run_sim(
            SimConfig::paper_baseline()
                .with_threads(2)
                .with_blocking(false),
            streams,
        );
        assert!(r2.records.iter().all(|x| x.blocked == 0.0));
    }

    #[test]
    fn grafting_consumes_in_flight_producer_deterministically() {
        let spec = q(0, 0, 2048, 2, VmOp::Subsample);
        let streams: Vec<ClientStream> = (0..2)
            .map(|c| ClientStream {
                client: ClientId(c),
                queries: vec![spec],
            })
            .collect();
        let mk = || {
            run_sim(
                SimConfig::paper_baseline()
                    .with_threads(2)
                    .with_graft(true)
                    .with_observe(true),
                streams.clone(),
            )
        };
        let r = mk();
        assert_eq!(r.grafted, 1);
        let grafts: Vec<_> = r.records.iter().filter(|x| x.grafted).collect();
        assert_eq!(grafts.len(), 1);
        let g = grafts[0];
        assert!(!g.exact_hit, "grafted is its own answer path");
        assert_eq!(g.covered_fraction, 1.0);
        assert_eq!(g.io_time, 0.0);
        assert_eq!(g.cpu_time, 0.0);
        assert!(g.blocked > 0.0, "the consumer waits for the producer");
        assert!(g.reused_bytes > 0);
        // The graft edge points consumer → producer; the consumer skipped
        // its Data Store lookup entirely, so no exact hit was counted.
        let producer = r.records.iter().find(|x| !x.grafted).unwrap().id;
        assert_eq!(
            vmqs_obs::timeline::grafted_edges(&r.events),
            vec![(g.id, producer)]
        );
        assert_eq!(r.ds_stats.exact_hits, 0);
        // Deterministic: the graft fires identically run to run.
        let r2 = mk();
        assert_eq!(r2.grafted, 1);
        assert_eq!(r.makespan, r2.makespan);
        // Graft off: the same workload blocks and takes a classic hit.
        let off = run_sim(
            SimConfig::paper_baseline()
                .with_threads(2)
                .with_observe(true),
            streams.clone(),
        );
        assert_eq!(off.grafted, 0);
        assert!(vmqs_obs::timeline::grafted_edges(&off.events).is_empty());
        assert_eq!(off.records.iter().filter(|x| x.exact_hit).count(), 1);
        // Grafting needs concurrency: at 1 thread nothing is ever
        // EXECUTING when a query dequeues, so no graft can fire.
        let one = run_sim(
            SimConfig::paper_baseline()
                .with_threads(1)
                .with_graft(true)
                .with_observe(true),
            streams,
        );
        assert_eq!(one.grafted, 0);
    }

    #[test]
    fn chunk_batch_strategy_runs_in_the_simulator() {
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: (0..6)
                .map(|i| q(i * 3000, 0, 1024, 1, VmOp::Subsample))
                .collect(),
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_strategy(Strategy::chunk_batch_default())
                .with_threads(2)
                .with_mode(SubmissionMode::Batch)
                .with_observe(true),
            streams,
        );
        assert_eq!(r.records.len(), 6);
        assert!(r.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Ranked {
                strategy: "CHUNKBATCH",
                ..
            }
        )));
    }

    #[test]
    fn batch_mode_submits_everything_at_zero() {
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![spec; 5],
        }];
        let r = run_sim(
            SimConfig::paper_baseline().with_mode(SubmissionMode::Batch),
            streams,
        );
        assert_eq!(r.records.len(), 5);
        assert!(r.records.iter().all(|x| x.arrival == 0.0));
        // Four of the five are exact hits off the first.
        assert_eq!(r.records.iter().filter(|x| x.exact_hit).count(), 4);
    }

    #[test]
    fn interactive_clients_serialize_their_own_queries() {
        let specs = vec![
            q(0, 0, 1024, 1, VmOp::Subsample),
            q(5000, 0, 1024, 1, VmOp::Subsample),
        ];
        let r = run_sim(
            SimConfig::paper_baseline().with_threads(8),
            one_client(specs),
        );
        // Second arrival must be at (or after) first completion.
        let first = r.records.iter().find(|x| x.arrival == 0.0).unwrap();
        let second = r.records.iter().find(|x| x.arrival > 0.0).unwrap();
        assert!(second.arrival >= first.finish);
    }

    #[test]
    fn fifo_orders_by_arrival_in_batch() {
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: (0..6)
                .map(|i| q(i * 3000, 0, 1024, 1, VmOp::Subsample))
                .collect(),
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_strategy(Strategy::Fifo)
                .with_threads(1)
                .with_mode(SubmissionMode::Batch),
            streams,
        );
        let starts: Vec<f64> = r.records.iter().map(|x| x.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(starts, sorted);
    }

    #[test]
    fn fast_disk_makes_io_negligible() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.disk = DiskModel::new(0.0, 1e15);
        cfg.cost = vmqs_microscope::VmCostModel::calibrated(&DiskModel::circa_2002());
        let spec = q(0, 0, 2048, 2, VmOp::Average);
        let r = run_sim(cfg, one_client(vec![spec]));
        assert!(r.records[0].io_time < 1e-6);
        assert!(r.records[0].cpu_time > 0.0);
    }

    fn heavy_then_light_batch() -> Vec<ClientStream> {
        // Disjoint heavy scans arrive first in FIFO order, keeping the
        // disk backlog high; tiny queries arrive last.
        let mut queries = vec![q(0, 0, 16384, 16, VmOp::Subsample)];
        for i in 0..3 {
            queries.push(q(i * 8192, 21000, 8192, 8, VmOp::Subsample));
        }
        for i in 0..6 {
            queries.push(q(i * 1024, 0, 1024, 1, VmOp::Subsample));
        }
        vec![ClientStream {
            client: ClientId(0),
            queries,
        }]
    }

    #[test]
    fn ioaware_policy_prefers_light_queries_under_congestion() {
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::Fifo)
            .with_threads(2)
            .with_mode(SubmissionMode::Batch);
        let ioaware = run_sim(
            cfg.with_policy(SchedPolicy::IoAware {
                candidates: 16,
                backlog_threshold: 0.05,
            }),
            heavy_then_light_batch(),
        );
        let plain = run_sim(cfg, heavy_then_light_batch());
        assert_eq!(ioaware.records.len(), 10);
        // Under congestion the policy starts the tiny (zoom 1) queries
        // earlier than strict FIFO would, so they finish sooner on average.
        let small_mean = |r: &SimReport| {
            let xs: Vec<f64> = r
                .records
                .iter()
                .filter(|x| x.spec.zoom == 1)
                .map(|x| x.finish)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            small_mean(&ioaware) < small_mean(&plain),
            "io-aware {} vs plain {}",
            small_mean(&ioaware),
            small_mean(&plain)
        );
    }

    #[test]
    fn ioaware_override_counter_tracks_interventions() {
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::Fifo)
            .with_threads(2)
            .with_mode(SubmissionMode::Batch)
            .with_policy(SchedPolicy::IoAware {
                candidates: 8,
                backlog_threshold: 0.5,
            });
        // Drive the simulator through its event loop manually so the
        // override counter can be read before `run` consumes it... the
        // counter is monotone, so running a clone-config simulator and
        // checking behaviour equivalence suffices; here we simply assert
        // the API exists and starts at zero.
        let sim = Simulator::new(cfg, heavy_then_light_batch());
        assert_eq!(sim.policy_overrides(), 0);
        assert!(sim.tuner_history().is_empty());
    }

    #[test]
    fn self_tuner_adjusts_hybrid_weight_deterministically() {
        let wl = || {
            (0..4u64)
                .map(|c| ClientStream {
                    client: ClientId(c),
                    queries: (0..12)
                        .map(|i| {
                            q(
                                (c as u32 * 600 + i * 512) % 20000,
                                (i * 700) % 20000,
                                2048,
                                2,
                                VmOp::Subsample,
                            )
                        })
                        .collect(),
                })
                .collect::<Vec<_>>()
        };
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::hybrid_default())
            .with_mode(SubmissionMode::Batch) // deep queue: ranks matter
            .with_tuner(TunerConfig {
                window: 8,
                step: 2.0,
            });
        let a = run_sim(cfg, wl());
        let b = run_sim(cfg, wl());
        assert_eq!(a.records.len(), 48);
        // Tuning stays deterministic.
        assert_eq!(a.makespan, b.makespan);
        // And it must actually differ from the untuned run (the tuner
        // re-ranks after every window).
        let untuned = run_sim(cfg_without_tuner(cfg), wl());
        assert_ne!(a.makespan, untuned.makespan);
    }

    fn cfg_without_tuner(mut cfg: SimConfig) -> SimConfig {
        cfg.tuner = None;
        cfg
    }

    #[test]
    fn trace_records_causal_event_sequences() {
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![spec, spec],
        }];
        let r = run_sim(SimConfig::paper_baseline().with_trace(true), streams);
        assert!(!r.trace.is_empty());
        // Times are non-decreasing.
        for w in r.trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Each query goes arrive -> start -> resume -> complete in order.
        for qid in r.records.iter().map(|x| x.id) {
            let kinds: Vec<&str> = r
                .trace
                .iter()
                .filter(|e| e.query == qid)
                .map(|e| e.kind.label())
                .collect();
            assert_eq!(
                kinds,
                vec!["arrive", "start", "resume", "complete"],
                "{qid}"
            );
        }
        // With trace off, the trace is empty.
        let r2 = run_sim(
            SimConfig::paper_baseline(),
            vec![ClientStream {
                client: ClientId(0),
                queries: vec![spec],
            }],
        );
        assert!(r2.trace.is_empty());
    }

    #[test]
    fn trace_captures_blocking_and_swapout() {
        use crate::trace::TraceKind;
        let spec = q(0, 0, 2048, 2, VmOp::Subsample);
        let streams: Vec<ClientStream> = (0..2)
            .map(|c| ClientStream {
                client: ClientId(c),
                queries: vec![spec],
            })
            .collect();
        let r = run_sim(
            SimConfig::paper_baseline().with_threads(2).with_trace(true),
            streams,
        );
        let blocks: Vec<_> = r
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Block { .. }))
            .collect();
        assert_eq!(blocks.len(), 1);
        // Swap-out appears when caching is impossible.
        let r2 = run_sim(
            SimConfig::paper_baseline()
                .with_ds_budget(0)
                .with_trace(true),
            vec![ClientStream {
                client: ClientId(0),
                queries: vec![spec],
            }],
        );
        assert!(r2
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::SwapOut)));
    }

    #[test]
    fn tuned_strategy_adjusts_parameters() {
        let (s, v) = tuned_strategy(Strategy::hybrid_default(), 2.0).unwrap();
        assert_eq!(v, 2.0);
        match s {
            Strategy::Hybrid { sjf_weight, .. } => assert_eq!(sjf_weight, 2.0),
            _ => panic!("wrong strategy"),
        }
        let (s2, a) = tuned_strategy(Strategy::ClosestFirst { alpha: 0.4 }, 2.0).unwrap();
        assert_eq!(a, 0.8);
        match s2 {
            Strategy::ClosestFirst { alpha } => assert_eq!(alpha, 0.8),
            _ => panic!("wrong strategy"),
        }
        // Clamped at 1.0.
        let (_, a2) = tuned_strategy(Strategy::ClosestFirst { alpha: 0.8 }, 2.0).unwrap();
        assert_eq!(a2, 1.0);
        assert!(tuned_strategy(Strategy::Fifo, 2.0).is_none());
    }

    #[test]
    fn fault_injection_slows_queries_deterministically() {
        use vmqs_storage::FaultConfig;
        let spec = q(0, 0, 4096, 2, VmOp::Subsample);
        let clean = run_sim(SimConfig::paper_baseline(), one_client(vec![spec]));
        let faulty_cfg = SimConfig::paper_baseline().with_faults(FaultConfig::transient(0.2, 99));
        let faulty = run_sim(faulty_cfg, one_client(vec![spec]));
        let again = run_sim(faulty_cfg, one_client(vec![spec]));
        // Counters move and the workload pays for the retries.
        assert!(faulty.io_faults > 0, "20% rate over a big scan must fault");
        assert_eq!(faulty.io_faults, faulty.io_retries);
        assert_eq!(clean.io_faults, 0);
        assert!(faulty.makespan > clean.makespan);
        // Deterministic per seed; a different seed redraws.
        assert_eq!(faulty.makespan, again.makespan);
        assert_eq!(faulty.io_faults, again.io_faults);
        let other_seed = run_sim(
            SimConfig::paper_baseline().with_faults(FaultConfig::transient(0.2, 100)),
            one_client(vec![spec]),
        );
        assert_ne!(faulty.io_faults, other_seed.io_faults);
        // A zero-retry policy charges faults but no retry latency.
        let no_retry = run_sim(
            faulty_cfg.with_retry(vmqs_pagespace::RetryPolicy::none()),
            one_client(vec![spec]),
        );
        assert_eq!(no_retry.io_retries, 0);
        assert_eq!(no_retry.makespan, clean.makespan);
    }

    #[test]
    fn bounded_admission_rejects_excess_batch_arrivals() {
        use vmqs_core::OverloadConfig;
        // Gate the batch so all five arrivals insert before any dequeue —
        // the same shape as the threaded engine's paused-pool test.
        let spec = q(0, 0, 1024, 1, VmOp::Subsample);
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![spec; 5],
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_mode(SubmissionMode::Batch)
                .with_batch_gate(true)
                .with_observe(true)
                .with_overload(OverloadConfig::default().with_max_pending(2)),
            streams,
        );
        // Two admitted, three rejected at the full queue.
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.rejected, 3);
        assert_eq!(r.shed, 0);
        let rejects = r
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Rejected {
                        rate_limited: false
                    }
                )
            })
            .count();
        assert_eq!(rejects, 3);
        // Every arrival got a Submitted event — rejected ones too.
        let submitted = r
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Submitted))
            .count();
        assert_eq!(submitted, 5);
    }

    #[test]
    fn shedding_evicts_largest_waiting_query() {
        use vmqs_core::OverloadConfig;
        // max_pending 4, shed at 0.75: two small queries keep pressure at
        // 0.5; the third arrival pushes it to 0.75 and the shed loop
        // evicts the largest-input query (the 16384px scan).
        let small = q(0, 0, 1024, 1, VmOp::Subsample);
        let big = q(0, 4096, 16384, 16, VmOp::Subsample);
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![small, big, q(4096, 0, 1024, 1, VmOp::Subsample)],
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_threads(1)
                .with_mode(SubmissionMode::Batch)
                .with_batch_gate(true)
                .with_observe(true)
                .with_overload(
                    OverloadConfig::default()
                        .with_max_pending(4)
                        .with_shed_threshold(0.75),
                ),
            streams,
        );
        assert_eq!(r.shed, 1);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.records.len(), 2);
        // The big scan never ran: every completed record is a small query.
        assert!(r.records.iter().all(|x| x.spec.zoom == 1));
        let shed_ev: Vec<_> = r
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Shed))
            .collect();
        assert_eq!(shed_ev.len(), 1);
        assert_eq!(shed_ev[0].query, QueryId(1));
    }

    #[test]
    fn degradation_downgrades_average_to_subsample() {
        use vmqs_core::OverloadConfig;
        // Degrade at 0.25 with max_pending 8: the first Average admits at
        // level 1/8, the second and third at 2/8 and 3/8 — both degraded.
        let avg = q(0, 0, 2048, 2, VmOp::Average);
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![
                avg,
                q(4096, 0, 2048, 2, VmOp::Average),
                q(8192, 0, 2048, 2, VmOp::Average),
            ],
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_threads(1)
                .with_mode(SubmissionMode::Batch)
                .with_batch_gate(true)
                .with_observe(true)
                .with_overload(
                    OverloadConfig::default()
                        .with_max_pending(8)
                        .with_degrade_threshold(0.25),
                ),
            streams,
        );
        assert_eq!(r.degraded, 2);
        assert_eq!(r.records.len(), 3);
        let degraded: Vec<_> = r.records.iter().filter(|x| x.degraded).collect();
        assert_eq!(degraded.len(), 2);
        // The record's spec is the degraded predicate that actually ran.
        assert!(degraded.iter().all(|x| x.spec.op == VmOp::Subsample));
        assert!(r
            .records
            .iter()
            .filter(|x| !x.degraded)
            .all(|x| x.spec.op == VmOp::Average));
        // Degraded queries are an order of magnitude cheaper on CPU.
        let full = r.records.iter().find(|x| !x.degraded).unwrap();
        assert!(degraded.iter().all(|x| x.cpu_time < full.cpu_time / 5.0));
    }

    #[test]
    fn rate_limited_interactive_client_still_terminates() {
        use vmqs_core::OverloadConfig;
        // Burst 1, negligible refill: the first query takes the only
        // token; the next two are rejected at submission — and the stream
        // still advances to termination (the refusal is the answer).
        let streams = vec![ClientStream {
            client: ClientId(0),
            queries: vec![
                q(0, 0, 1024, 1, VmOp::Subsample),
                q(4096, 0, 1024, 1, VmOp::Subsample),
                q(8192, 0, 1024, 1, VmOp::Subsample),
            ],
        }];
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_observe(true)
                .with_overload(OverloadConfig::default().with_client_rate(1e-9)),
            streams,
        );
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.rejected, 2);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Rejected { rate_limited: true })));
    }

    #[test]
    fn overload_runs_are_deterministic() {
        use vmqs_core::OverloadConfig;
        let mk = || {
            let streams: Vec<ClientStream> = (0..6)
                .map(|c| ClientStream {
                    client: ClientId(c),
                    queries: (0..4)
                        .map(|i| {
                            q(
                                (c as u32 * 900 + i * 512) % 20000,
                                (i * 911) % 20000,
                                if (c + i as u64).is_multiple_of(3) {
                                    8192
                                } else {
                                    1024
                                },
                                1 << (i % 3),
                                if c % 2 == 0 {
                                    VmOp::Average
                                } else {
                                    VmOp::Subsample
                                },
                            )
                        })
                        .collect(),
                })
                .collect();
            run_sim(
                SimConfig::paper_baseline()
                    .with_threads(2)
                    .with_mode(SubmissionMode::Batch)
                    .with_batch_gate(true)
                    .with_observe(true)
                    .with_overload(
                        OverloadConfig::default()
                            .with_max_pending(6)
                            .with_degrade_threshold(0.5)
                            .with_shed_threshold(0.85),
                    ),
                streams,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.makespan, b.makespan);
        let seq = |r: &SimReport| vmqs_obs::timeline::admission_sequence(&r.events);
        assert_eq!(seq(&a), seq(&b));
        // The workload actually exercised the ladder. The shed loop keeps
        // the queue below `max_pending`, so outright rejection never
        // triggers here — shedding pre-empts it by design.
        assert!(a.shed > 0, "expected shedding under 4x pressure");
        assert!(a.degraded > 0, "expected degraded admissions");
        // Conservation: every arrival is accounted for exactly once.
        assert_eq!(
            a.records.len() as u64 + a.rejected + a.shed,
            a.metrics
                .counters
                .get("vmqs_queries_submitted_total")
                .copied()
                .unwrap_or(0)
        );
    }

    #[test]
    fn tuner_hill_climbs_and_reverses() {
        let mut t = Tuner::new(TunerConfig {
            window: 2,
            step: 2.0,
        });
        assert!(t.observe(1.0).is_none());
        // First window closes: steps forward.
        assert_eq!(t.observe(1.0), Some(2.0));
        // Second window is worse: reverses.
        t.observe(5.0);
        assert_eq!(t.observe(5.0), Some(0.5));
        // Third window improves: keeps direction.
        t.observe(2.0);
        assert_eq!(t.observe(2.0), Some(0.5));
    }

    /// A tier-1 budget that holds exactly one result plus the disjoint
    /// pair that forces a demotion — the minimal spill-pressure setup
    /// (the `a, b, a` pattern: the second `a` must re-heat). Zoom 4, so
    /// the cached output is 16× smaller than the input scan a recompute
    /// would pay for — the regime where a disk-tier re-heat wins.
    fn spill_pressure_cfg() -> (SimConfig, VmQuery, VmQuery) {
        let a = q(0, 0, 2048, 4, VmOp::Subsample);
        let b = q(4096, 4096, 2048, 4, VmOp::Subsample);
        let size = a.qoutsize();
        let cfg = SimConfig::paper_baseline()
            .with_threads(1)
            .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
            .with_ds_budget(size + size / 2)
            // Pressure on the page cache too, so a recompute really pays
            // its input scan again — the memory-constrained regime the
            // tier exists for.
            .with_ps_budget(1 << 20)
            .with_tier2_budget(1 << 30)
            .with_observe(true);
        (cfg, a, b)
    }

    #[test]
    fn tier2_spill_restores_at_disk_cost() {
        let (cfg, a, b) = spill_pressure_cfg();
        let report = run_sim(cfg, one_client(vec![a, b, a]));
        assert!(
            report.spilled >= 1,
            "b must demote a to tier 2, not drop it"
        );
        assert_eq!(report.restored, 1);
        assert_eq!(report.restore_failures, 0);
        let last = report.records.last().unwrap();
        assert!(last.exact_hit);
        assert!((last.covered_fraction - 1.0).abs() < 1e-12);
        // The re-heat pays one disk read of the result, far below the
        // original compute's page I/O.
        assert!(last.io_time > 0.0);
        assert!(last.io_time < report.records[0].io_time);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Spilled { .. })));
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Restored { .. })));

        // Against the legacy single-tier LRU at the same memory budget,
        // the tier saves the whole recompute of the returning query.
        let lru = run_sim(
            cfg.with_tier2_budget(0)
                .with_cache_policy(vmqs_datastore::EvictionPolicy::Lru),
            one_client(vec![a, b, a]),
        );
        assert_eq!((lru.spilled, lru.restored), (0, 0));
        assert!(lru.recomputed_bytes > report.recomputed_bytes);
        assert!(report.makespan < lru.makespan);

        // Virtual time is deterministic: an identical run replays exactly.
        let again = run_sim(cfg, one_client(vec![a, b, a]));
        assert_eq!(report.makespan, again.makespan);
        assert_eq!(report.recomputed_bytes, again.recomputed_bytes);
    }

    #[test]
    fn poisoned_tier2_restore_falls_back_to_recompute() {
        use vmqs_storage::FaultConfig;
        let (cfg, a, b) = spill_pressure_cfg();
        // Every tier-2 read poisoned: the returning query must drop the
        // entry and recompute — no restore, no panic, all queries finish.
        let report = run_sim(
            cfg.with_faults(FaultConfig::none().with_permanent(1.0)),
            one_client(vec![a, b, a]),
        );
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.restored, 0);
        assert!(report.restore_failures >= 1);
        let last = report.records.last().unwrap();
        assert!(!last.exact_hit, "the re-heat must have failed");
        // The dropped entry leaves through the tier-2 eviction path.
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Evicted { tier: 2, .. })));
    }

    // ----- failure containment (DESIGN.md §15) -----

    use vmqs_storage::ChaosConfig;

    /// Finds a seed whose poison draws mark exactly `want` among query
    /// ids `0..n` — so tests can pin which query is the poison one.
    fn poison_seed(rate: f64, n: u64, want: &[u64]) -> u64 {
        (0..20_000u64)
            .find(|&seed| {
                let c = ChaosConfig::none().with_seed(seed).with_poison_rate(rate);
                (0..n).all(|q| c.query_is_poison(q) == want.contains(&q))
            })
            .expect("some seed draws exactly the wanted poison set")
    }

    #[test]
    fn injected_panic_requeues_query_and_respawns_worker() {
        let chaos = ChaosConfig::none().with_panic_at_compute(Some(0));
        let mk = || {
            run_sim(
                SimConfig::paper_baseline()
                    .with_threads(1)
                    .with_mode(SubmissionMode::Batch)
                    .with_chaos(chaos)
                    .with_observe(true),
                one_client(vec![
                    q(0, 0, 1024, 1, VmOp::Subsample),
                    q(5000, 0, 1024, 1, VmOp::Subsample),
                ]),
            )
        };
        let r = mk();
        // The killed query is requeued and completes on its second
        // attempt (the ordinal trigger does not re-fire); its peer is
        // untouched.
        assert_eq!(r.records.len(), 2);
        assert_eq!((r.failed, r.quarantined), (0, 0));
        assert_eq!((r.worker_panics, r.worker_restarts), (1, 1));
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerPanicked)));
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerRestarted)));
        // Virtual-time chaos is deterministic.
        let r2 = mk();
        assert_eq!(r.makespan, r2.makespan);
    }

    #[test]
    fn poison_query_is_quarantined_and_run_twice_golden_matches() {
        // Exactly query id 1 (of 0..3) draws poison: it panics on every
        // attempt and must be contained by the quarantine counter while
        // its peers complete.
        let seed = poison_seed(0.3, 3, &[1]);
        let chaos = ChaosConfig::none().with_seed(seed).with_poison_rate(0.3);
        let mk = || {
            run_sim(
                SimConfig::paper_baseline()
                    .with_threads(1)
                    .with_mode(SubmissionMode::Batch)
                    .with_chaos(chaos)
                    .with_quarantine_limit(3)
                    .with_restart_budget(8)
                    .with_observe(true),
                one_client(vec![
                    q(0, 0, 1024, 1, VmOp::Subsample),
                    q(5000, 0, 1024, 1, VmOp::Subsample),
                    q(10000, 0, 1024, 1, VmOp::Subsample),
                ]),
            )
        };
        let r = mk();
        assert_eq!(r.records.len(), 2);
        assert!(r.records.iter().all(|x| x.id.raw() != 1));
        assert_eq!((r.failed, r.quarantined), (1, 1));
        assert_eq!((r.worker_panics, r.worker_restarts), (3, 3));
        // Conservation: every submitted query terminated exactly once.
        assert_eq!(
            r.records.len() as u64 + r.failed + r.timed_out + r.shed + r.rejected,
            3
        );
        let golden = |rep: &SimReport| -> Vec<(f64, u64, u32)> {
            rep.events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Quarantined { attempts } => Some((e.time, e.query.raw(), attempts)),
                    _ => None,
                })
                .collect()
        };
        let g1 = golden(&r);
        assert_eq!(g1.len(), 1);
        assert_eq!((g1[0].1, g1[0].2), (1, 3));
        // Run-twice golden: the same seed and chaos plan must reproduce
        // the identical Quarantined sequence, bit for bit.
        let r2 = mk();
        assert_eq!(g1, golden(&r2));
        assert_eq!(r.makespan, r2.makespan);
    }

    #[test]
    fn hang_watchdog_cancels_stuck_query_in_virtual_time() {
        let big = q(0, 0, 8192, 8, VmOp::Average);
        let small = q(15000, 0, 64, 1, VmOp::Subsample);
        // Calibrate from an unwatched run: pick a limit between the two
        // execution spans so only the big query trips the watchdog.
        let base = run_sim(
            SimConfig::paper_baseline().with_threads(1),
            one_client(vec![big, small]),
        );
        let e_big = base.records[0].exec_time();
        let e_small = base.records[1].exec_time();
        let h = e_big / 2.0;
        assert!(e_small < h && h < e_big, "calibration must separate spans");
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_threads(1)
                .with_hang_timeout(Some(h))
                .with_observe(true),
            one_client(vec![big, small]),
        );
        // The big query is cancelled at its deadline; the client's next
        // query still runs to completion afterwards.
        assert_eq!((r.hung, r.timed_out, r.failed), (1, 1, 0));
        assert_eq!(r.records.len(), 1);
        assert!(r.records[0].spec.cmp(&small));
        let kinds: Vec<&str> = r
            .events
            .iter()
            .filter(|e| e.query.raw() == 0)
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(
            kinds.last().copied(),
            Some("timed_out"),
            "TimedOut terminates the hung query"
        );
        assert!(kinds.contains(&"hung"));
    }

    #[test]
    fn exhausted_restart_budget_kills_pool_and_fails_waiting_typed() {
        let chaos = ChaosConfig::none().with_panic_at_compute(Some(0));
        let r = run_sim(
            SimConfig::paper_baseline()
                .with_threads(1)
                .with_mode(SubmissionMode::Batch)
                .with_chaos(chaos)
                .with_restart_budget(0)
                .with_observe(true),
            one_client(vec![
                q(0, 0, 1024, 1, VmOp::Subsample),
                q(5000, 0, 1024, 1, VmOp::Subsample),
                q(10000, 0, 1024, 1, VmOp::Subsample),
            ]),
        );
        // One panic retires the only worker: the victim is requeued but
        // the pool is dead, so it and every WAITING peer fail typed-ly.
        assert_eq!(r.records.len(), 0);
        assert_eq!((r.worker_panics, r.worker_restarts), (1, 0));
        assert_eq!(r.failed, 3);
        assert_eq!(
            r.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Failed))
                .count(),
            3
        );
        assert!(!r
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerRestarted)));
    }
}
