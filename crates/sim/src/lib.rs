//! # vmqs-sim
//!
//! A deterministic discrete-event simulator of the VMQS query server at
//! the paper's scale.
//!
//! The paper's performance evaluation ran on a 24-processor Solaris SMP
//! with a local disk farm and 7.5 GB of digitized slides — hardware this
//! reproduction substitutes (see DESIGN.md §2). The simulator executes the
//! *same* scheduling graph, ranking strategies, Data Store, and page-cache
//! logic as the real threaded engine, but advances a virtual clock against
//! analytic disk and CPU cost models calibrated to the paper's reported
//! CPU:I/O ratios. A full 256-query experiment that took the authors
//! minutes of wall-clock time replays here in milliseconds, bit-for-bit
//! reproducibly.
//!
//! ```
//! use vmqs_core::{ClientId, DatasetId, Rect};
//! use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
//! use vmqs_sim::{run_sim, ClientStream, SimConfig};
//!
//! let slide = SlideDataset::paper_scale(DatasetId(0));
//! let q = VmQuery::new(slide, Rect::new(0, 0, 4096, 4096), 4, VmOp::Subsample);
//! let report = run_sim(
//!     SimConfig::paper_baseline(),
//!     vec![ClientStream { client: ClientId(0), queries: vec![q, q] }],
//! );
//! assert_eq!(report.records.len(), 2);
//! assert!(report.records[1].exact_hit); // second query reuses the first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod config;
mod disk;
mod engine;
mod events;
mod report;
mod trace;
mod vm;

pub use app::{ReusePlan, SimApplication};
pub use config::{ClientStream, SchedPolicy, SimConfig, SubmissionMode, TunerConfig};
pub use disk::{DiskQueue, DiskStats};
pub use engine::{run_sim, run_sim_app, Simulator};
pub use events::{Event, EventQueue};
pub use report::{SimRecord, SimReport};
pub use trace::{trace_to_csv, TraceEvent, TraceKind};
pub use vm::VmSimApp;
