//! Simulation output: per-query records and aggregate report.

use crate::disk::DiskStats;
use vmqs_core::stats::{trimmed_mean_95, Summary};
use vmqs_core::{ClientId, GraphStats, QueryId};
use vmqs_datastore::DsStats;
use vmqs_microscope::VmQuery;
use vmqs_pagespace::PsStats;

/// Execution record of one simulated query. Generic over the
/// application's predicate type; defaults to the Virtual Microscope.
#[derive(Clone, Copy, Debug)]
pub struct SimRecord<S = VmQuery> {
    /// The query.
    pub id: QueryId,
    /// Submitting client.
    pub client: ClientId,
    /// Predicate.
    pub spec: S,
    /// Submission time (virtual seconds).
    pub arrival: f64,
    /// Dequeue time (start of execution, including any blocked wait).
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Time spent blocked on an EXECUTING dependency.
    pub blocked: f64,
    /// Fraction of output answered from cached results, in `[0, 1]`.
    pub covered_fraction: f64,
    /// Output bytes obtained by projection from cache.
    pub reused_bytes: u64,
    /// Virtual seconds spent waiting for I/O (including disk queueing).
    pub io_time: f64,
    /// Virtual seconds of CPU work (kernel + projection + planning).
    pub cpu_time: f64,
    /// True when answered entirely by one exact cached match.
    pub exact_hit: bool,
    /// True when answered by grafting onto an in-flight producer: the
    /// query subscribed to an EXECUTING peer computing the same predicate
    /// and consumed the published result without its own lookup, I/O, or
    /// kernel time (DESIGN.md §13). Mutually exclusive with `exact_hit`.
    pub grafted: bool,
    /// True when admission downgraded the query to its cheaper plan
    /// (`spec` is the *degraded* predicate that actually executed).
    pub degraded: bool,
}

impl<S> SimRecord<S> {
    /// Queue wait: submission → dequeue.
    pub fn wait_time(&self) -> f64 {
        self.start - self.arrival
    }

    /// Execution span: dequeue → completion.
    pub fn exec_time(&self) -> f64 {
        self.finish - self.start
    }

    /// Response time = wait + execution (the paper's metric).
    pub fn response_time(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Aggregate output of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport<S = VmQuery> {
    /// Per-query records in completion order.
    pub records: Vec<SimRecord<S>>,
    /// Virtual time at which the last query completed.
    pub makespan: f64,
    /// Data Store counters.
    pub ds_stats: DsStats,
    /// Page Space counters.
    pub ps_stats: PsStats,
    /// Scheduling-graph counters.
    pub graph_stats: GraphStats,
    /// Disk counters.
    pub disk_stats: DiskStats,
    /// Schedule trace (empty unless `SimConfig::trace` was set).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Transient page-read faults injected by the fault model.
    pub io_faults: u64,
    /// Retries charged for those faults (capped per page at the retry
    /// budget).
    pub io_retries: u64,
    /// Typed scheduler events stamped with virtual time, in emission
    /// order (empty unless `SimConfig::observe` was set).
    pub events: Vec<vmqs_obs::EventRecord>,
    /// Metrics-registry snapshot taken at the end of the run.
    pub metrics: vmqs_obs::MetricsSnapshot,
    /// Queries refused at admission (queue full or rate limited); they
    /// never execute and leave no [`SimRecord`].
    pub rejected: u64,
    /// Admitted queries evicted by the load shedder before starting.
    pub shed: u64,
    /// Queries downgraded to their cheaper plan at admission.
    pub degraded: u64,
    /// Queries answered by grafting onto an in-flight producer.
    pub grafted: u64,
    /// Data Store entries demoted to the virtual tier-2 spill instead of
    /// dropped (DESIGN.md §14).
    pub spilled: u64,
    /// Spilled entries re-heated at disk cost instead of recompute cost.
    pub restored: u64,
    /// Tier-2 reads poisoned by the fault model; the entry was dropped
    /// and the query recomputed.
    pub restore_failures: u64,
    /// Output bytes produced by computation rather than reuse, summed
    /// over all completed queries — the cache-pressure sweep's headline
    /// metric (fewer recomputed bytes = the eviction policy kept the
    /// right entries).
    pub recomputed_bytes: u64,
    /// Queries that terminated with a typed failure (quarantined poison
    /// queries, or WAITING work failed when the pool died); they leave no
    /// [`SimRecord`].
    pub failed: u64,
    /// Queries cancelled by a deadline — includes hang-watchdog
    /// cancellations (every hung query is also counted here, mirroring
    /// the threaded engine's timeout fold).
    pub timed_out: u64,
    /// Virtual worker panics injected by the chaos plan (DESIGN.md §15).
    pub worker_panics: u64,
    /// Replacement virtual workers spawned from the restart budget.
    pub worker_restarts: u64,
    /// Queries failed after exhausting the quarantine limit (deterministic
    /// poison queries contained instead of crash-looping the pool).
    pub quarantined: u64,
    /// Queries cancelled by the hang watchdog.
    pub hung: u64,
}

impl<S> SimReport<S> {
    /// Response times of all queries.
    pub fn response_times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.response_time()).collect()
    }

    /// The paper's headline statistic: 95%-trimmed mean of query response
    /// time.
    pub fn trimmed_mean_response(&self) -> f64 {
        trimmed_mean_95(&self.response_times())
    }

    /// Full summary of response times.
    pub fn response_summary(&self) -> Summary {
        Summary::of(&self.response_times())
    }

    /// Average achieved overlap (fraction of output answered from cache),
    /// the Fig. 5 metric.
    pub fn average_overlap(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.covered_fraction).sum::<f64>() / self.records.len() as f64
    }

    /// Mean time spent blocked on executing dependencies.
    pub fn mean_blocked(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.blocked).sum::<f64>() / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::{DatasetId, Rect};
    use vmqs_microscope::{SlideDataset, VmOp};

    fn rec(arrival: f64, start: f64, finish: f64, covered: f64) -> SimRecord {
        SimRecord {
            id: QueryId(0),
            client: ClientId(0),
            spec: VmQuery::new(
                SlideDataset::new(DatasetId(0), 100, 100),
                Rect::new(0, 0, 10, 10),
                1,
                VmOp::Subsample,
            ),
            arrival,
            start,
            finish,
            blocked: 0.0,
            covered_fraction: covered,
            reused_bytes: 0,
            io_time: 0.0,
            cpu_time: 0.0,
            exact_hit: false,
            grafted: false,
            degraded: false,
        }
    }

    #[test]
    fn record_time_arithmetic() {
        let r = rec(1.0, 3.0, 10.0, 0.5);
        assert_eq!(r.wait_time(), 2.0);
        assert_eq!(r.exec_time(), 7.0);
        assert_eq!(r.response_time(), 9.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SimReport {
            records: vec![rec(0.0, 0.0, 2.0, 0.2), rec(0.0, 1.0, 5.0, 0.6)],
            makespan: 5.0,
            ds_stats: DsStats::default(),
            ps_stats: PsStats::default(),
            graph_stats: GraphStats::default(),
            disk_stats: DiskStats::default(),
            trace: Vec::new(),
            io_faults: 0,
            io_retries: 0,
            events: Vec::new(),
            metrics: vmqs_obs::MetricsSnapshot::default(),
            rejected: 0,
            shed: 0,
            degraded: 0,
            grafted: 0,
            spilled: 0,
            restored: 0,
            restore_failures: 0,
            recomputed_bytes: 0,
            failed: 0,
            timed_out: 0,
            worker_panics: 0,
            worker_restarts: 0,
            quarantined: 0,
            hung: 0,
        };
        assert_eq!(report.response_times(), vec![2.0, 5.0]);
        assert!((report.average_overlap() - 0.4).abs() < 1e-12);
        assert!((report.trimmed_mean_response() - 3.5).abs() < 1e-12);
        assert_eq!(report.mean_blocked(), 0.0);
    }
}
