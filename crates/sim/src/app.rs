//! The application adapter: what the simulator needs to know about a data
//! analysis application.
//!
//! The paper's middleware is application-neutral — an application supplies
//! predicate operators (`cmp`/`overlap`/`project`/`qoutsize`) and
//! processing functions. The simulator likewise executes *any* application
//! through this trait: given a target query and the cached results that
//! can contribute to it, the application plans how much is reusable and
//! which storage pages the remainder must scan; plus CPU cost rates for
//! its kernels. The Virtual Microscope adapter lives in
//! [`crate::VmSimApp`]; the 3-D volume visualization application of the
//! paper's §6 future work implements the same trait in `vmqs-volume`.

use vmqs_core::SpatialSpec;
use vmqs_pagespace::PageKey;

/// Result of planning one query's execution against the cache.
#[derive(Clone, Debug, Default)]
pub struct ReusePlan {
    /// Fraction of the output answered from cached results, in `[0, 1]`.
    pub covered_fraction: f64,
    /// Output bytes obtained by projection from cache.
    pub reused_bytes: u64,
    /// Storage pages the uncovered remainder must read.
    pub pages: Vec<PageKey>,
    /// Input bytes the processing kernel scans for the remainder.
    pub input_bytes: u64,
}

/// A data-analysis application, as seen by the discrete-event simulator.
pub trait SimApplication: Send + Sync + 'static {
    /// The application's predicate type.
    type Spec: SpatialSpec + Copy + std::fmt::Debug;

    /// Plans `target` against `cached` results (most-reusable first, as
    /// returned by the Data Store lookup): greedy coverage, remainder page
    /// set, and scan size. Exact (`cmp`) hits are handled by the engine
    /// before this is called.
    fn plan(&self, target: &Self::Spec, cached: &[Self::Spec]) -> ReusePlan;

    /// CPU seconds for the processing function of `spec` over
    /// `input_bytes` of chunk data.
    fn compute_seconds(&self, spec: &Self::Spec, input_bytes: u64) -> f64;

    /// CPU seconds to project `reused_bytes` of cached output.
    fn project_seconds(&self, reused_bytes: u64) -> f64;

    /// Fixed per-query planning overhead (index lookup, graph updates).
    fn planning_seconds(&self) -> f64 {
        1e-4
    }

    /// A strictly cheaper variant of `spec` that still answers the
    /// query window, or `None` when no cheaper plan exists. Used by the
    /// overload manager's graceful-degradation step; must match the
    /// threaded engine's `AppExecutor::degrade` for the same application
    /// so both engines make identical decisions.
    fn degrade(&self, _spec: &Self::Spec) -> Option<Self::Spec> {
        None
    }
}
