//! Simulation configuration and workload description.

use vmqs_core::{ClientId, OverloadConfig, Strategy};
use vmqs_microscope::{VmCostModel, VmQuery};
use vmqs_pagespace::RetryPolicy;
use vmqs_storage::{ChaosConfig, DiskModel, FaultConfig};

/// How a client stream's queries enter the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmissionMode {
    /// Each client submits its next query only after receiving the answer
    /// to the previous one (the paper's Fig. 4–6 setup), optionally after a
    /// think time.
    Interactive,
    /// All queries of all clients are submitted at time zero as one batch
    /// (the paper's Fig. 7 setup: 256 queries in a single batch).
    Batch,
}

/// One emulated client and its ordered query stream. Generic over the
/// application's predicate type; defaults to the Virtual Microscope.
#[derive(Clone, Debug)]
pub struct ClientStream<S = VmQuery> {
    /// Client identity.
    pub client: ClientId,
    /// Queries in submission order.
    pub queries: Vec<S>,
}

/// How the scheduler picks the next query among WAITING candidates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SchedPolicy {
    /// Strictly by rank (the paper's model).
    RankOrder,
    /// §6 extension (3): when the disk backlog exceeds a threshold, pick —
    /// among the `candidates` highest-ranked WAITING queries — the one
    /// with the smallest `qinputsize`, shedding I/O pressure; otherwise
    /// behave like [`SchedPolicy::RankOrder`].
    IoAware {
        /// How many top-ranked candidates to consider.
        candidates: usize,
        /// Mean per-disk outstanding work (seconds) above which the disk
        /// counts as congested.
        backlog_threshold: f64,
    },
}

/// §6 extension (1): online self-tuning of the combined strategy. A
/// hill-climbing controller adjusts the strategy's continuous parameter
/// (hybrid `sjf_weight`, or CF's `α`) every `window` completions, keeping
/// the change when the window's mean response time improved and reversing
/// direction when it worsened.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TunerConfig {
    /// Completions per tuning window.
    pub window: usize,
    /// Multiplicative step applied to the tuned parameter per window.
    pub step: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            window: 16,
            step: 1.5,
        }
    }
}

/// Full configuration of a simulated server run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Ranking strategy.
    pub strategy: Strategy,
    /// Query threads = maximum concurrently executing queries (paper §5
    /// varies this from 1 to 24 on the 24-CPU SMP).
    pub threads: usize,
    /// Data Store budget in bytes (0 disables result caching).
    pub ds_budget: u64,
    /// Page Space budget in bytes.
    pub ps_budget: u64,
    /// Allow blocking on EXECUTING queries whose results are reusable.
    pub allow_blocking: bool,
    /// The per-disk performance model behind the Page Space Manager.
    pub disk: DiskModel,
    /// Independent disks in the farm. I/O throughput scales up to this
    /// many concurrent streams; beyond it, seek thrash sets in. Calibrated
    /// to 4, matching the paper's observed optimum at 4 query threads for
    /// the I/O-bound workload.
    pub n_disks: usize,
    /// CPU cost model calibrated to the paper's CPU:I/O ratios.
    pub cost: VmCostModel,
    /// Interactive-mode think time between receiving an answer and
    /// submitting the next query, in seconds.
    pub think_time: f64,
    /// How queries arrive.
    pub mode: SubmissionMode,
    /// Dequeue policy (rank order, or I/O-aware candidate selection).
    pub policy: SchedPolicy,
    /// Data Store eviction policy (LRU in the paper's system).
    pub ds_policy: vmqs_datastore::EvictionPolicy,
    /// Optional self-tuning controller for parameterized strategies.
    pub tuner: Option<TunerConfig>,
    /// Record a per-event schedule trace (see [`crate::TraceEvent`]).
    pub trace: bool,
    /// Cell side (base-resolution pixels) of the Data Store's grid index.
    /// Pick roughly the footprint of a typical cached result.
    pub index_cell: u32,
    /// Transient-fault injection for the virtual disks. The simulator
    /// charges each faulted page the retry latency the threaded engine
    /// would pay (re-read service time + backoff) and counts faults and
    /// retries in the report. Only `transient_rate` and `seed` are
    /// honoured — the virtual replay has no failure delivery path, so
    /// permanent faults and latency spikes are server-engine-only.
    pub fault: FaultConfig,
    /// Retry policy bounding the charged retries per page.
    pub retry: RetryPolicy,
    /// Record typed scheduler events in the observability log (DESIGN.md
    /// §9), stamped with virtual time. Metrics counters are always on;
    /// this gates only the event log.
    pub observe: bool,
    /// Defer dequeuing while further same-time arrivals are pending, so a
    /// batch submitted at one instant is fully inserted into the
    /// scheduling graph before the first dequeue — mirroring the threaded
    /// engine's paused start. Used by the scheduler-conformance harness.
    pub gate_batch_start: bool,
    /// Overload-management knobs (bounded admission, per-client rate
    /// limiting, degradation, shedding). The simulator runs the *same*
    /// admission ladder as the threaded server, in virtual time, so the
    /// conformance harness can pin admission decisions across engines
    /// (DESIGN.md §10). Disabled by default.
    pub overload: OverloadConfig,
    /// Grafting onto in-flight queries (DESIGN.md §13), mirroring the
    /// threaded engine: a dequeued query whose answer an EXECUTING peer is
    /// already computing subscribes to that producer and consumes its
    /// published result at completion time — emitting a `Grafted` event
    /// instead of a Data Store lookup — and dequeue switches to the
    /// producer-affinity order so a consumer never starts ahead of a
    /// same-predicate producer. Disabled by default.
    pub graft: bool,
    /// Tier-2 spill budget in bytes (DESIGN.md §14). When nonzero, Data
    /// Store victims are demoted to a virtual disk tier instead of
    /// dropped; a later exact-match lookup re-heats them at one disk
    /// service time (charged in virtual time) instead of recompute cost.
    /// Tier-2 reads draw permanent faults from [`SimConfig::fault`] keyed
    /// on the reserved spill device, so poisoned restores fall back to
    /// recomputation exactly like the threaded engine. 0 disables (the
    /// paper's single-tier configuration).
    pub tier2_budget: u64,
    /// Chaos injection (DESIGN.md §15): deterministic poison queries and
    /// a panic-at-nth-compute kill-point, keyed on the same seed and
    /// compute ordinal as the threaded engine so the same failure edges
    /// fire in both.
    pub chaos: ChaosConfig,
    /// Hang watchdog limit in virtual seconds: a query whose dequeue →
    /// completion span would exceed this is cancelled at the limit and
    /// reported as hung (folded into `timed_out`). `None` disables.
    pub hang_timeout: Option<f64>,
    /// Replacement workers the supervisor may spawn after compute panics
    /// before the pool is declared dead and WAITING queries are failed.
    pub restart_budget: usize,
    /// Compute panics one query may cause before the quarantine rule
    /// fails it typed-ly instead of retrying it (must be ≥ 1).
    pub quarantine_limit: u32,
}

impl SimConfig {
    /// The paper's §5 baseline: CNBF, 4 threads, DS = 64 MB, PS = 32 MB,
    /// circa-2002 disk, calibrated costs, interactive clients.
    pub fn paper_baseline() -> Self {
        let disk = DiskModel::circa_2002();
        SimConfig {
            strategy: Strategy::Cnbf,
            threads: 4,
            ds_budget: 64 << 20,
            ps_budget: 32 << 20,
            allow_blocking: true,
            disk,
            n_disks: 4,
            cost: VmCostModel::calibrated(&disk),
            think_time: 0.0,
            mode: SubmissionMode::Interactive,
            policy: SchedPolicy::RankOrder,
            ds_policy: vmqs_datastore::EvictionPolicy::Lru,
            tuner: None,
            trace: false,
            index_cell: 4096,
            fault: FaultConfig::none(),
            retry: RetryPolicy::default_io(),
            observe: false,
            gate_batch_start: false,
            overload: OverloadConfig::default(),
            graft: false,
            tier2_budget: 0,
            chaos: ChaosConfig::none(),
            hang_timeout: None,
            restart_budget: 8,
            quarantine_limit: 3,
        }
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Builder-style thread-count override.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.threads = n;
        self
    }

    /// Builder-style Data Store budget override.
    pub fn with_ds_budget(mut self, b: u64) -> Self {
        self.ds_budget = b;
        self
    }

    /// Builder-style Page Space budget override.
    pub fn with_ps_budget(mut self, b: u64) -> Self {
        self.ps_budget = b;
        self
    }

    /// Builder-style submission-mode override.
    pub fn with_mode(mut self, m: SubmissionMode) -> Self {
        self.mode = m;
        self
    }

    /// Builder-style blocking toggle.
    pub fn with_blocking(mut self, allow: bool) -> Self {
        self.allow_blocking = allow;
        self
    }

    /// Builder-style dequeue-policy override.
    pub fn with_policy(mut self, p: SchedPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Builder-style self-tuner override.
    pub fn with_tuner(mut self, t: TunerConfig) -> Self {
        self.tuner = Some(t);
        self
    }

    /// Builder-style Data Store eviction-policy override.
    pub fn with_ds_policy(mut self, p: vmqs_datastore::EvictionPolicy) -> Self {
        self.ds_policy = p;
        self
    }

    /// Builder-style trace toggle.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Builder-style grid-index cell-size override.
    pub fn with_index_cell(mut self, cell: u32) -> Self {
        assert!(cell > 0, "index cell must be positive");
        self.index_cell = cell;
        self
    }

    /// Builder-style fault-injection override.
    pub fn with_faults(mut self, f: FaultConfig) -> Self {
        self.fault = f;
        self
    }

    /// Builder-style retry-policy override.
    pub fn with_retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Builder-style event-log toggle.
    pub fn with_observe(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }

    /// Builder-style batch-start-gate toggle.
    pub fn with_batch_gate(mut self, on: bool) -> Self {
        self.gate_batch_start = on;
        self
    }

    /// Builder-style overload-management override.
    pub fn with_overload(mut self, ov: OverloadConfig) -> Self {
        self.overload = ov;
        self
    }

    /// Builder-style grafting toggle.
    pub fn with_graft(mut self, on: bool) -> Self {
        self.graft = on;
        self
    }

    /// Builder-style tier-2 spill-budget override (bytes; 0 disables).
    pub fn with_tier2_budget(mut self, b: u64) -> Self {
        self.tier2_budget = b;
        self
    }

    /// Builder-style cache-policy override — the `--cache-policy` flag's
    /// name for [`SimConfig::with_ds_policy`].
    pub fn with_cache_policy(self, p: vmqs_datastore::EvictionPolicy) -> Self {
        self.with_ds_policy(p)
    }

    /// Builder-style chaos-injection override.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builder-style hang-watchdog limit (virtual seconds; `None` off).
    pub fn with_hang_timeout(mut self, t: Option<f64>) -> Self {
        if let Some(t) = t {
            assert!(t > 0.0, "hang timeout must be positive");
        }
        self.hang_timeout = t;
        self
    }

    /// Builder-style restart-budget override.
    pub fn with_restart_budget(mut self, n: usize) -> Self {
        self.restart_budget = n;
        self
    }

    /// Builder-style quarantine-limit override.
    pub fn with_quarantine_limit(mut self, n: u32) -> Self {
        assert!(n >= 1, "quarantine limit must be at least 1");
        self.quarantine_limit = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_setup() {
        let c = SimConfig::paper_baseline();
        assert_eq!(c.threads, 4);
        assert_eq!(c.ds_budget, 64 << 20);
        assert_eq!(c.ps_budget, 32 << 20);
        assert_eq!(c.mode, SubmissionMode::Interactive);
        assert!(c.allow_blocking);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::paper_baseline()
            .with_strategy(Strategy::Fifo)
            .with_threads(8)
            .with_ds_budget(1)
            .with_ps_budget(2)
            .with_mode(SubmissionMode::Batch)
            .with_blocking(false);
        assert_eq!(c.strategy, Strategy::Fifo);
        assert_eq!(c.threads, 8);
        assert_eq!((c.ds_budget, c.ps_budget), (1, 2));
        assert_eq!(c.mode, SubmissionMode::Batch);
        assert!(!c.allow_blocking);
        let c2 = SimConfig::paper_baseline()
            .with_observe(true)
            .with_batch_gate(true);
        assert!(c2.observe && c2.gate_batch_start);
        assert!(!SimConfig::paper_baseline().observe);
        assert!(!SimConfig::paper_baseline().gate_batch_start);
        assert!(!SimConfig::paper_baseline().graft, "grafting is opt-in");
        assert!(SimConfig::paper_baseline().with_graft(true).graft);
        assert_eq!(
            SimConfig::paper_baseline().tier2_budget,
            0,
            "the paper's configuration is single-tier"
        );
        let c3 = SimConfig::paper_baseline()
            .with_tier2_budget(1 << 30)
            .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased);
        assert_eq!(c3.tier2_budget, 1 << 30);
        assert_eq!(c3.ds_policy, vmqs_datastore::EvictionPolicy::CostBased);
    }

    #[test]
    fn containment_knobs_default_off_and_compose() {
        let base = SimConfig::paper_baseline();
        assert!(base.chaos.is_noop() && base.hang_timeout.is_none());
        assert_eq!((base.restart_budget, base.quarantine_limit), (8, 3));
        let c = base
            .with_chaos(ChaosConfig::none().with_seed(9).with_poison_rate(0.1))
            .with_hang_timeout(Some(2.5))
            .with_restart_budget(1)
            .with_quarantine_limit(2);
        assert!(!c.chaos.is_noop());
        assert_eq!(c.hang_timeout, Some(2.5));
        assert_eq!((c.restart_budget, c.quarantine_limit), (1, 2));
    }

    #[test]
    fn overload_defaults_off_and_builder_composes() {
        assert!(!SimConfig::paper_baseline().overload.enabled());
        let c = SimConfig::paper_baseline()
            .with_overload(OverloadConfig::default().with_max_pending(8));
        assert!(c.overload.enabled());
        assert_eq!(c.overload.max_pending, 8);
    }
}
