//! The event queue driving the simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vmqs_core::{ClientId, QueryId};

/// Simulation events, generic over the application's predicate type.
#[derive(Clone, Debug)]
pub enum Event<S> {
    /// A client submits a query.
    Arrival {
        /// Submitting client.
        client: ClientId,
        /// The query predicate.
        spec: S,
        /// Index of the query within the client's stream.
        seq_in_client: usize,
    },
    /// A previously blocked query resumes execution (its dependency
    /// finished).
    Resume {
        /// The query to resume.
        id: QueryId,
    },
    /// A query finishes executing.
    Completion {
        /// The finished query.
        id: QueryId,
    },
    /// The hang watchdog's deadline for one execution span (DESIGN.md
    /// §15): pushed at dequeue when `SimConfig::hang_timeout` is set. If
    /// the query is still in that same span when this fires, it is
    /// cancelled as hung; a span that already completed (or was requeued
    /// by a panic) makes this a no-op.
    HangDeadline {
        /// The query whose span is being watched.
        id: QueryId,
    },
}

struct Scheduled<S> {
    time: f64,
    seq: u64,
    event: Event<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties break
        // by insertion order (earlier-scheduled first), making runs fully
        // deterministic.
        other
            .time
            .partial_cmp(&self.time)
            .expect("non-finite event time")
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<S> {
    heap: BinaryHeap<Scheduled<S>>,
    seq: u64,
}

impl<S> Default for EventQueue<S> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<S> EventQueue<S> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: f64, event: Event<S>) {
        assert!(time.is_finite(), "non-finite event time");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event<S>)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Peeks at the earliest pending event without removing it.
    pub fn peek(&self) -> Option<(f64, &Event<S>)> {
        self.heap.peek().map(|s| (s.time, &s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(2.0, Event::Completion { id: QueryId(2) });
        q.push(1.0, Event::Completion { id: QueryId(1) });
        q.push(3.0, Event::Completion { id: QueryId(3) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Completion { id } => id.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..5 {
            q.push(7.0, Event::Resume { id: QueryId(i) });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Resume { id } => id.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_time() {
        EventQueue::<()>::new().push(f64::NAN, Event::Resume { id: QueryId(0) });
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, Event::Resume { id: QueryId(0) });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
