//! End-to-end tests of the `vmqsctl` binary (spawned as a real process).

use std::process::Command;

fn vmqsctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vmqsctl"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vmqsctl_{}_{name}", std::process::id()))
}

#[test]
fn help_prints_usage() {
    let out = vmqsctl().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vmqsctl render"));
    assert!(text.contains("vmqsctl simulate"));
}

#[test]
fn no_args_prints_usage() {
    let out = vmqsctl().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = vmqsctl().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn render_writes_valid_ppm() {
    let path = tmp("render.ppm");
    let out = vmqsctl()
        .args([
            "render", "--x", "64", "--y", "64", "--w", "256", "--h", "256", "--zoom", "2", "--op",
            "average", "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.starts_with(b"P6\n128 128\n255\n"));
    assert_eq!(bytes.len(), 15 + 128 * 128 * 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mip_writes_valid_pgm() {
    let path = tmp("proj.pgm");
    let out = vmqsctl()
        .args([
            "mip", "--w", "64", "--h", "64", "--z0", "0", "--z1", "32", "--lod", "2", "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.starts_with(b"P5\n32 32\n255\n"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_prints_csv_summary() {
    let out = vmqsctl()
        .args([
            "simulate",
            "--strategy",
            "SJF",
            "--op",
            "average",
            "--threads",
            "2",
            "--ds-mb",
            "32",
            "--seed",
            "7",
            "--batch",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy,op,threads,ds_mb"));
    assert!(text.contains("SJF,average,2,32"));
    assert!(text.contains("queries:          256"));
}

#[test]
fn simulate_rejects_bad_strategy() {
    let out = vmqsctl()
        .args(["simulate", "--strategy", "BOGUS"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn render_rejects_bad_zoom() {
    let out = vmqsctl()
        .args(["render", "--zoom", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value"));
}

#[test]
fn trace_writes_event_csv() {
    let path = tmp("trace.csv");
    let out = vmqsctl()
        .args([
            "trace",
            "--strategy",
            "CNBF",
            "--threads",
            "2",
            "--seed",
            "5",
            "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("time_s,query,event,detail\n"));
    // 256 queries: at least arrive+start+resume+complete each.
    assert!(text.lines().count() > 4 * 256);
    assert!(text.contains(",arrive,"));
    assert!(text.contains(",complete,"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn render_with_fault_injection_recovers_and_reports() {
    let path = tmp("faulty.ppm");
    let out = vmqsctl()
        .args([
            "render",
            "--w",
            "256",
            "--h",
            "256",
            "--fault-rate",
            "0.2",
            "--fault-seed",
            "7",
            "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("io faults:"),
        "fault counters missing:\n{text}"
    );
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.starts_with(b"P6\n256 256\n255\n"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn render_zero_timeout_fails_with_timeout_error() {
    let path = tmp("timeout.ppm");
    let out = vmqsctl()
        .args([
            "render",
            "--w",
            "128",
            "--h",
            "128",
            "--query-timeout-ms",
            "0",
            "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success(), "zero deadline must fail the render");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("timed out"), "stderr:\n{err}");
    assert!(!path.exists(), "no output file may be written on timeout");
}

#[test]
fn render_rejects_out_of_range_fault_rate() {
    let out = vmqsctl()
        .args(["render", "--fault-rate", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-rate"));
}

#[test]
fn simulate_with_overload_sheds_and_reports() {
    let out = vmqsctl()
        .args([
            "simulate",
            "--threads",
            "2",
            "--seed",
            "7",
            "--batch",
            "--max-pending",
            "16",
            "--degrade-threshold",
            "0.5",
            "--shed-threshold",
            "0.9",
            "--op",
            "average",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("overload:"),
        "overload summary missing:\n{text}"
    );
    // 256 queries against a 16-deep queue must trip the shedder.
    let line = text.lines().find(|l| l.contains("overload:")).unwrap();
    assert!(!line.contains(" 0 shed"), "expected shedding: {line}");
}

#[test]
fn overload_thresholds_require_max_pending() {
    let out = vmqsctl()
        .args(["simulate", "--shed-threshold", "0.9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-pending"));
}

#[test]
fn render_with_rate_limit_of_one_query_succeeds() {
    // A single render fits any burst; the flag must parse and the summary
    // line must appear.
    let path = tmp("rate.ppm");
    let out = vmqsctl()
        .args([
            "render",
            "--w",
            "128",
            "--h",
            "128",
            "--client-rate",
            "1.0",
            "--out",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("overload: 0 rejected, 0 shed, 0 degraded"),
        "overload summary missing:\n{text}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_with_faults_charges_retries() {
    let out = vmqsctl()
        .args([
            "simulate",
            "--threads",
            "2",
            "--seed",
            "7",
            "--batch",
            "--fault-rate",
            "0.2",
            "--fault-seed",
            "9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("io faults:") && text.contains("retries charged"),
        "fault summary missing:\n{text}"
    );
}
