//! Subcommand implementations.

use crate::args::{parse_strategy, Args};
use std::error::Error;
use std::sync::Arc;
use vmqs_core::{DatasetId, OverloadConfig, Rect, Strategy};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_server::{QueryServer, ServerConfig};
use vmqs_sim::{run_sim, SimConfig, SubmissionMode};
use vmqs_storage::{ChaosConfig, DataSource, FaultConfig, FaultInjectingSource, SyntheticSource};
use vmqs_volume::{VolOp, VolQuery, VolumeDataset};
use vmqs_workload::{flatten_to_batch, generate, ExpRow, WorkloadConfig};

type CliResult = Result<(), Box<dyn Error>>;

fn parse_vm_op(s: &str) -> Result<VmOp, String> {
    match s {
        "subsample" => Ok(VmOp::Subsample),
        "average" => Ok(VmOp::Average),
        other => Err(format!("unknown op '{other}' (subsample|average)")),
    }
}

/// Parses the shared fault-injection options (`--fault-rate`,
/// `--fault-seed`) into a [`FaultConfig`].
fn parse_faults(args: &Args) -> Result<FaultConfig, Box<dyn Error>> {
    let rate: f64 = args.get_or("fault-rate", 0.0)?;
    let seed: u64 = args.get_or("fault-seed", 42)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must lie in [0, 1], got {rate}").into());
    }
    Ok(FaultConfig::transient(rate, seed))
}

/// Parses the shared overload-management options (`--max-pending`,
/// `--client-rate`, `--degrade-threshold`, `--shed-threshold`) into an
/// [`OverloadConfig`]. All default off.
fn parse_overload(args: &Args) -> Result<OverloadConfig, Box<dyn Error>> {
    let max_pending: usize = args.get_or("max-pending", 0)?;
    let client_rate: f64 = args.get_or("client-rate", 0.0)?;
    let degrade: f64 = args.get_or("degrade-threshold", f64::INFINITY)?;
    let shed: f64 = args.get_or("shed-threshold", f64::INFINITY)?;
    if client_rate < 0.0 {
        return Err(format!("--client-rate must be non-negative, got {client_rate}").into());
    }
    for (name, v) in [("degrade-threshold", degrade), ("shed-threshold", shed)] {
        if v < 0.0 || v.is_nan() {
            return Err(format!("--{name} must be a non-negative pressure level, got {v}").into());
        }
    }
    if (degrade <= 1.0 || shed <= 1.0) && max_pending == 0 {
        return Err(
            "--degrade-threshold/--shed-threshold need --max-pending (pressure is \
             measured against the admission bound)"
                .into(),
        );
    }
    Ok(OverloadConfig {
        max_pending,
        client_rate,
        degrade_threshold: degrade,
        shed_threshold: shed,
    })
}

/// Parses the shared cache-hierarchy options (DESIGN.md §14):
/// `--cache-policy lru|mru|largest|cost` picks the Data Store eviction
/// policy, `--spill-dir` points the tier-2 spill store at a directory,
/// and `--tier2-budget` caps it in MB (default 64 once a directory is
/// given). Returns `(policy, spill_dir, tier2_bytes)`; the policy is
/// `None` when the flag is absent so callers keep their config default.
/// `need_dir` is set by the real server (its tier 2 lives on disk);
/// the simulator models tier-2 latency on virtual payloads and accepts
/// a budget alone.
type CacheOptions = (
    Option<vmqs_datastore::EvictionPolicy>,
    Option<std::path::PathBuf>,
    u64,
);

fn parse_cache(args: &Args, need_dir: bool) -> Result<CacheOptions, Box<dyn Error>> {
    use vmqs_datastore::EvictionPolicy;
    let policy = match args.get("cache-policy") {
        None => None,
        Some("lru") => Some(EvictionPolicy::Lru),
        Some("mru") => Some(EvictionPolicy::Mru),
        Some("largest") => Some(EvictionPolicy::LargestFirst),
        Some("cost") => Some(EvictionPolicy::CostBased),
        Some(other) => {
            return Err(format!("unknown cache policy '{other}' (lru|mru|largest|cost)").into())
        }
    };
    let spill_dir = args.get("spill-dir").map(std::path::PathBuf::from);
    let tier2_mb: u64 = args.get_or("tier2-budget", if spill_dir.is_some() { 64 } else { 0 })?;
    if need_dir && tier2_mb > 0 && spill_dir.is_none() {
        return Err("--tier2-budget needs --spill-dir (the tier-2 store lives on disk)".into());
    }
    Ok((policy, spill_dir, tier2_mb << 20))
}

/// Parses the failure-containment options (DESIGN.md §15):
/// `--hang-timeout-ms` arms the hang watchdog (wall clock on the server,
/// virtual time in the simulator), `--restart-budget` and
/// `--quarantine-limit` bound worker respawns and poison-query retries,
/// and the `--chaos-*` family drives the seeded fault injector:
/// `--chaos-seed`, `--chaos-poison-rate`, `--chaos-panic-at`,
/// `--chaos-crash-spill-at`, `--chaos-flip-frame-at`. Returns
/// `(chaos, hang_timeout_ms, restart_budget, quarantine_limit)`.
type ContainmentOptions = (ChaosConfig, Option<u64>, usize, u32);

fn parse_containment(args: &Args) -> Result<ContainmentOptions, Box<dyn Error>> {
    let rate: f64 = args.get_or("chaos-poison-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--chaos-poison-rate must lie in [0, 1], got {rate}").into());
    }
    let nth = |name: &str| -> Result<Option<u64>, Box<dyn Error>> {
        Ok(match args.get(name) {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value '{v}' for --{name}"))?,
            ),
        })
    };
    let chaos = ChaosConfig::none()
        .with_seed(args.get_or("chaos-seed", 42)?)
        .with_poison_rate(rate)
        .with_panic_at_compute(nth("chaos-panic-at")?)
        .with_crash_spill_write(nth("chaos-crash-spill-at")?)
        .with_bit_flip_frame(nth("chaos-flip-frame-at")?);
    let hang = match nth("hang-timeout-ms")? {
        Some(0) => return Err("--hang-timeout-ms must be positive".into()),
        other => other,
    };
    let restart: usize = args.get_or("restart-budget", 8)?;
    let quarantine: u32 = args.get_or("quarantine-limit", 3)?;
    if quarantine == 0 {
        return Err("--quarantine-limit must be at least 1".into());
    }
    Ok((chaos, hang, restart, quarantine))
}

/// Parses `--strategy` (defaulting to `default`) and applies the optional
/// `--starvation-dial` override to CHUNKBATCH's aging knob (DESIGN.md §13:
/// 0 = pure chunk affinity, ≥ 1 = exact FIFO).
fn parse_strategy_with_dial(args: &Args, default: Strategy) -> Result<Strategy, Box<dyn Error>> {
    let mut strategy = match args.get("strategy") {
        None => default,
        Some(s) => parse_strategy(s).ok_or(format!("unknown strategy '{s}'"))?,
    };
    if let Some(raw) = args.get("starvation-dial") {
        let dial: f64 = raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --starvation-dial"))?;
        if !dial.is_finite() || dial < 0.0 {
            return Err(format!("--starvation-dial must be non-negative, got {dial}").into());
        }
        match &mut strategy {
            Strategy::ChunkBatch { starvation_dial } => *starvation_dial = dial,
            other => {
                return Err(format!(
                    "--starvation-dial only applies to CHUNKBATCH, not {}",
                    other.name()
                )
                .into())
            }
        }
    }
    Ok(strategy)
}

/// `vmqsctl render` — render a microscope window through the real server.
pub fn render(args: &Args) -> CliResult {
    let sw: u32 = args.get_or("slide-width", 8192)?;
    let sh: u32 = args.get_or("slide-height", 8192)?;
    let x: u32 = args.get_or("x", 0)?;
    let y: u32 = args.get_or("y", 0)?;
    let w: u32 = args.get_or("w", 1024)?;
    let h: u32 = args.get_or("h", 1024)?;
    let zoom: u32 = args.get_or("zoom", 1)?;
    let op = parse_vm_op(args.get("op").unwrap_or("subsample"))?;
    let out = args.get("out").unwrap_or("render.ppm");
    let fault = parse_faults(args)?;
    let overload = parse_overload(args)?;
    let strategy = parse_strategy_with_dial(args, Strategy::Cnbf)?;
    let (policy, spill_dir, tier2_bytes) = parse_cache(args, true)?;
    // Negative sentinel = no timeout; `--query-timeout-ms 0` is a valid
    // (immediately expiring) deadline.
    let timeout_ms: i64 = args.get_or("query-timeout-ms", -1)?;
    let (chaos, hang_ms, restart_budget, quarantine_limit) = parse_containment(args)?;
    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");

    let slide = SlideDataset::new(DatasetId(0), sw, sh);
    let query = VmQuery::new(slide, Rect::new(x, y, w, h), zoom, op);
    let source: Arc<dyn DataSource> = if fault.is_noop() {
        Arc::new(SyntheticSource::new())
    } else {
        Arc::new(FaultInjectingSource::new(SyntheticSource::new(), fault))
    };
    let mut cfg = ServerConfig::small()
        .with_strategy(strategy)
        .with_graft(args.flag("graft"))
        .with_retry_seed(fault.seed)
        .with_observability(trace_out.is_some())
        .with_spill_dir(spill_dir)
        .with_tier2_budget(tier2_bytes)
        .with_overload(overload)
        .with_chaos(chaos)
        .with_hang_timeout(hang_ms.map(std::time::Duration::from_millis))
        .with_restart_budget(restart_budget)
        .with_quarantine_limit(quarantine_limit);
    if let Some(p) = policy {
        cfg = cfg.with_cache_policy(p);
    }
    if timeout_ms >= 0 {
        cfg = cfg.with_query_timeout(Some(std::time::Duration::from_millis(timeout_ms as u64)));
    }
    let server = QueryServer::new(cfg, source);
    let res = match server.submit(query).wait() {
        Ok(res) => res,
        Err(e) => {
            server.shutdown();
            return Err(e.into());
        }
    };
    let img = vmqs_microscope::RgbImage {
        width: res.width,
        height: res.height,
        data: res.image.to_vec(),
    };
    img.write_ppm(out)?;
    println!(
        "rendered {}x{} ({} op, zoom {zoom}) in {:?} -> {out}",
        res.width,
        res.height,
        op.name(),
        res.record.exec_time
    );
    println!(
        "pages read: {}, answered via {:?}",
        res.record.pages_requested, res.record.path
    );
    if !fault.is_noop() {
        let sum = server.summary();
        println!(
            "io faults: {}, retries: {}, failed reads: {}",
            sum.io_faults, sum.io_retries, sum.failed_reads
        );
    }
    if overload.enabled() {
        let sum = server.summary();
        println!(
            "overload: {} rejected, {} shed, {} degraded",
            sum.rejected, sum.shed, sum.degraded
        );
    }
    if tier2_bytes > 0 {
        let sum = server.summary();
        println!(
            "tier 2: {} spilled, {} restored, {} restore failures",
            sum.spilled, sum.restored, sum.restore_failures
        );
    }
    if !chaos.is_noop() || hang_ms.is_some() {
        let sum = server.summary();
        println!(
            "containment: {} worker panics, {} restarts, {} quarantined, {} hung",
            sum.worker_panics, sum.worker_restarts, sum.quarantined, sum.hung
        );
    }
    if let Some(path) = trace_out {
        let events = server.events();
        std::fs::write(path, vmqs_obs::events_to_json(&events))?;
        println!("wrote {} events -> {path}", events.len());
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, server.metrics().to_prometheus())?;
        println!("wrote metrics -> {path}");
    }
    server.shutdown();
    Ok(())
}

/// `vmqsctl mip` — render a volume projection through the real kernels.
pub fn mip(args: &Args) -> CliResult {
    let x: u32 = args.get_or("x", 0)?;
    let y: u32 = args.get_or("y", 0)?;
    let w: u32 = args.get_or("w", 256)?;
    let h: u32 = args.get_or("h", 256)?;
    let z0: u32 = args.get_or("z0", 0)?;
    let z1: u32 = args.get_or("z1", 128)?;
    let lod: u32 = args.get_or("lod", 1)?;
    let op = match args.get("op").unwrap_or("mip") {
        "mip" => VolOp::Mip,
        "avgproj" => VolOp::AvgProj,
        other => return Err(format!("unknown op '{other}' (mip|avgproj)").into()),
    };
    let out = args.get("out").unwrap_or("projection.pgm");

    let volume = VolumeDataset::new(DatasetId(1), 1024, 1024, 512);
    let query = VolQuery::new(volume, Rect::new(x, y, w, h), z0, z1, lod, op);
    let src = SyntheticSource::new();
    let img = vmqs_volume::kernels::compute_from_bricks(&query, |idx| {
        Arc::new(
            vmqs_storage::DataSource::read_page(&src, volume.id, idx, vmqs_volume::PAGE_SIZE)
                .expect("synthetic source cannot fail"),
        )
    });
    img.write_pgm(out)?;
    println!(
        "rendered {}x{} {} projection of depth [{z0},{z1}) -> {out}",
        img.width,
        img.height,
        op.name()
    );
    Ok(())
}

/// `vmqsctl simulate` — one paper-scale simulated configuration.
pub fn simulate(args: &Args) -> CliResult {
    let strategy = parse_strategy_with_dial(args, Strategy::Cnbf)?;
    let op = parse_vm_op(args.get("op").unwrap_or("subsample"))?;
    let threads: usize = args.get_or("threads", 4)?;
    let ds_mb: u64 = args.get_or("ds-mb", 64)?;
    let ps_mb: u64 = args.get_or("ps-mb", 32)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mode = if args.flag("batch") {
        SubmissionMode::Batch
    } else {
        SubmissionMode::Interactive
    };
    let fault = parse_faults(args)?;
    let overload = parse_overload(args)?;
    // The simulator models tier 2 in virtual time — the budget applies,
    // but no directory is needed (payloads are virtual), so `--spill-dir`
    // is accepted and unused here.
    let (policy, _spill_dir, tier2_bytes) = parse_cache(args, false)?;
    let (chaos, hang_ms, restart_budget, quarantine_limit) = parse_containment(args)?;
    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");

    let streams = generate(&WorkloadConfig::paper(op, seed));
    let streams = match mode {
        SubmissionMode::Interactive => streams,
        SubmissionMode::Batch => flatten_to_batch(&streams),
    };
    let mut cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_threads(threads)
        .with_ds_budget(ds_mb << 20)
        .with_ps_budget(ps_mb << 20)
        .with_mode(mode)
        .with_faults(fault)
        .with_graft(args.flag("graft"))
        .with_tier2_budget(tier2_bytes)
        .with_observe(trace_out.is_some())
        .with_overload(overload)
        .with_chaos(chaos)
        .with_hang_timeout(hang_ms.map(|ms| ms as f64 / 1000.0))
        .with_restart_budget(restart_budget)
        .with_quarantine_limit(quarantine_limit);
    if let Some(p) = policy {
        cfg = cfg.with_cache_policy(p);
    }
    let report = run_sim(cfg, streams);
    let row = ExpRow::from_report(&report, strategy, op, threads, ds_mb);
    println!("{}", ExpRow::csv_header());
    println!("{}", row.to_csv());
    println!();
    println!("queries:          {}", report.records.len());
    println!(
        "trimmed response: {:>8.2} s",
        report.trimmed_mean_response()
    );
    println!("makespan:         {:>8.2} s", report.makespan);
    println!("average overlap:  {:>8.3}", report.average_overlap());
    println!(
        "disk:             {} requests, {:.1} MB, {:.1} s busy",
        report.disk_stats.requests,
        report.disk_stats.bytes as f64 / (1 << 20) as f64,
        report.disk_stats.busy_time
    );
    if !fault.is_noop() {
        println!(
            "io faults:        {} injected, {} retries charged",
            report.io_faults, report.io_retries
        );
    }
    if overload.enabled() {
        println!(
            "overload:         {} rejected, {} shed, {} degraded",
            report.rejected, report.shed, report.degraded
        );
    }
    if args.flag("graft") {
        println!("grafted answers:  {}", report.grafted);
    }
    if tier2_bytes > 0 {
        println!(
            "tier 2:           {} spilled, {} restored, {} restore failures",
            report.spilled, report.restored, report.restore_failures
        );
    }
    if !chaos.is_noop() || hang_ms.is_some() {
        println!(
            "containment:      {} worker panics, {} restarts, {} quarantined, {} hung, {} failed",
            report.worker_panics,
            report.worker_restarts,
            report.quarantined,
            report.hung,
            report.failed
        );
    }
    if let Some(path) = trace_out {
        std::fs::write(path, vmqs_obs::events_to_json(&report.events))?;
        println!("wrote {} events -> {path}", report.events.len());
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, report.metrics.to_prometheus())?;
        println!("wrote metrics -> {path}");
    }
    Ok(())
}

/// `vmqsctl trace` — export a schedule trace of a simulated run.
pub fn trace(args: &Args) -> CliResult {
    let strategy = match args.get("strategy") {
        None => Strategy::Cnbf,
        Some(s) => parse_strategy(s).ok_or(format!("unknown strategy '{s}'"))?,
    };
    let op = parse_vm_op(args.get("op").unwrap_or("subsample"))?;
    let threads: usize = args.get_or("threads", 4)?;
    let ds_mb: u64 = args.get_or("ds-mb", 64)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.get("out").unwrap_or("trace.csv");
    let mode = if args.flag("batch") {
        SubmissionMode::Batch
    } else {
        SubmissionMode::Interactive
    };
    let streams = generate(&WorkloadConfig::paper(op, seed));
    let streams = match mode {
        SubmissionMode::Interactive => streams,
        SubmissionMode::Batch => flatten_to_batch(&streams),
    };
    let cfg = SimConfig::paper_baseline()
        .with_strategy(strategy)
        .with_threads(threads)
        .with_ds_budget(ds_mb << 20)
        .with_mode(mode)
        .with_trace(true);
    let report = run_sim(cfg, streams);
    std::fs::write(out, vmqs_sim::trace_to_csv(&report.trace))?;
    println!(
        "wrote {} events for {} queries ({} strategy, makespan {:.1} s) -> {out}",
        report.trace.len(),
        report.records.len(),
        strategy.name(),
        report.makespan
    );
    Ok(())
}

/// `vmqsctl demo` — a fixed guided tour.
pub fn demo() -> CliResult {
    let slide = SlideDataset::new(DatasetId(0), 4000, 4000);
    let server = QueryServer::new(ServerConfig::small(), Arc::new(SyntheticSource::new()));
    let q1 = VmQuery::new(slide, Rect::new(0, 0, 1024, 1024), 2, VmOp::Subsample);
    let q2 = VmQuery::new(slide, Rect::new(512, 0, 1024, 1024), 2, VmOp::Subsample);
    println!("1) fresh render:");
    let r1 = server.submit(q1).wait()?;
    println!(
        "   {:?}, {} pages",
        r1.record.path, r1.record.pages_requested
    );
    println!("2) identical repeat:");
    let r2 = server.submit(q1).wait()?;
    println!(
        "   {:?}, {} pages",
        r2.record.path, r2.record.pages_requested
    );
    println!("3) half-overlapping pan:");
    let r3 = server.submit(q2).wait()?;
    println!(
        "   {:?}, reuse {:.0}%, {} pages",
        r3.record.path,
        100.0 * r3.record.covered_fraction,
        r3.record.pages_requested
    );
    server.shutdown();

    println!("\nsimulated paper workload (CNBF vs FIFO, batch):");
    for strategy in [Strategy::Fifo, Strategy::Cnbf] {
        let streams = flatten_to_batch(&generate(&WorkloadConfig::paper(VmOp::Subsample, 42)));
        let cfg = SimConfig::paper_baseline()
            .with_strategy(strategy)
            .with_mode(SubmissionMode::Batch);
        let report = run_sim(cfg, streams);
        println!(
            "   {:>4}: 256 queries in {:.1} s (overlap {:.2})",
            strategy.name(),
            report.makespan,
            report.average_overlap()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_datastore::EvictionPolicy;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn cache_flags_parse_together() {
        let a = args("--cache-policy cost --spill-dir /tmp/x --tier2-budget 128");
        let (p, dir, t2) = parse_cache(&a, true).unwrap();
        assert_eq!(p, Some(EvictionPolicy::CostBased));
        assert_eq!(dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(t2, 128 << 20);
    }

    #[test]
    fn spill_dir_defaults_tier2_budget() {
        let (_, dir, t2) = parse_cache(&args("--spill-dir /tmp/x"), true).unwrap();
        assert!(dir.is_some());
        assert_eq!(t2, 64 << 20);
    }

    #[test]
    fn tier2_budget_needs_dir_only_on_the_real_server() {
        assert!(parse_cache(&args("--tier2-budget 32"), true).is_err());
        let (_, _, t2) = parse_cache(&args("--tier2-budget 32"), false).unwrap();
        assert_eq!(t2, 32 << 20);
    }

    #[test]
    fn every_policy_name_parses_and_typos_are_rejected() {
        for (name, want) in [
            ("lru", EvictionPolicy::Lru),
            ("mru", EvictionPolicy::Mru),
            ("largest", EvictionPolicy::LargestFirst),
            ("cost", EvictionPolicy::CostBased),
        ] {
            let a = args(&format!("--cache-policy {name}"));
            assert_eq!(parse_cache(&a, true).unwrap().0, Some(want), "{name}");
        }
        assert!(parse_cache(&args("--cache-policy fancy"), true).is_err());
        // Absent flag keeps the config default.
        assert_eq!(parse_cache(&args(""), true).unwrap().0, None);
    }

    #[test]
    fn containment_flags_default_off() {
        let (chaos, hang, restart, quarantine) = parse_containment(&args("")).unwrap();
        assert!(chaos.is_noop());
        assert_eq!(hang, None);
        assert_eq!(restart, 8);
        assert_eq!(quarantine, 3);
    }

    #[test]
    fn containment_flags_parse_together() {
        let a = args(
            "--hang-timeout-ms 250 --restart-budget 2 --quarantine-limit 1 \
             --chaos-seed 7 --chaos-poison-rate 0.1 --chaos-panic-at 3 \
             --chaos-crash-spill-at 0 --chaos-flip-frame-at 5",
        );
        let (chaos, hang, restart, quarantine) = parse_containment(&a).unwrap();
        assert!(!chaos.is_noop());
        assert_eq!(chaos.seed, 7);
        assert!(chaos.compute_should_panic(3, u64::MAX));
        assert_eq!(chaos.crash_spill_write, Some(0));
        assert_eq!(chaos.bit_flip_frame, Some(5));
        assert_eq!(hang, Some(250));
        assert_eq!(restart, 2);
        assert_eq!(quarantine, 1);
    }

    #[test]
    fn containment_flags_reject_bad_values() {
        assert!(parse_containment(&args("--chaos-poison-rate 1.5")).is_err());
        assert!(parse_containment(&args("--hang-timeout-ms 0")).is_err());
        assert!(parse_containment(&args("--hang-timeout-ms banana")).is_err());
        assert!(parse_containment(&args("--quarantine-limit 0")).is_err());
    }
}
