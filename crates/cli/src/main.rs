//! `vmqsctl` — command-line interface to the VMQS reproduction.
//!
//! ```text
//! vmqsctl render    render a microscope region through the real server to a PPM
//! vmqsctl mip       render a volume projection to a PGM
//! vmqsctl simulate  run a paper-scale simulated experiment and print the summary
//! vmqsctl demo      a short guided tour of the multi-query optimizations
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
vmqsctl — multi-query scheduling for data visualization workloads

USAGE:
  vmqsctl render   --x N --y N --w N --h N [--zoom N] [--op subsample|average]
                   [--slide-width N] [--slide-height N] [--out FILE.ppm]
                   [--strategy NAME] [--starvation-dial F] [--graft]
                   [--cache-policy lru|mru|largest|cost] [--spill-dir DIR]
                   [--tier2-budget MB]
                   [--fault-rate F] [--fault-seed N] [--query-timeout-ms N]
                   [--max-pending N] [--client-rate QPS]
                   [--degrade-threshold F] [--shed-threshold F]
                   [--trace-out FILE.json] [--metrics-out FILE.prom]
      Render a Virtual Microscope window through the real threaded server
      (deterministic synthetic slide data). --fault-rate injects seeded
      transient read faults (retried with bounded backoff);
      --query-timeout-ms cancels the query at its deadline. --trace-out
      writes the typed scheduler-event log as JSON; --metrics-out writes
      the metrics registry in Prometheus text format. --max-pending bounds
      the admission queue (excess submissions are rejected with a
      retry-after hint); --client-rate caps each client's sustained
      queries/second; --degrade-threshold and --shed-threshold set the
      pressure levels (0..1, against the --max-pending bound) at which
      queries are downgraded to their cheaper plan or shed. --graft lets
      queries subscribe to in-flight producers instead of recomputing.
      --cache-policy picks the Data Store eviction policy ('cost' keeps
      the entries that save the most recomputation per byte); --spill-dir
      enables the restorable tier-2 spill store in that directory,
      capped at --tier2-budget MB (default 64).

  vmqsctl mip      --x N --y N --w N --h N --z0 N --z1 N [--lod N]
                   [--op mip|avgproj] [--out FILE.pgm]
      Render a 3-D volume projection through the real kernels.

  vmqsctl simulate [--strategy FIFO|MUF|FF|CF|CNBF|SJF|HYBRID|CHUNKBATCH]
                   [--starvation-dial F] [--graft] [--op subsample|average]
                   [--threads N] [--ds-mb N] [--ps-mb N] [--seed N] [--batch]
                   [--cache-policy lru|mru|largest|cost] [--tier2-budget MB]
                   [--fault-rate F] [--fault-seed N]
                   [--max-pending N] [--client-rate QPS]
                   [--degrade-threshold F] [--shed-threshold F]
                   [--trace-out FILE.json] [--metrics-out FILE.prom]
      Run the paper's 16-client x 16-query workload in the discrete-event
      simulator and print the summary row. --fault-rate charges seeded
      transient faults their retry latency in virtual time. The overload
      knobs run the same admission ladder as `render`, in virtual time.
      --trace-out / --metrics-out export the same event-log JSON and
      Prometheus metrics as `render`, stamped with virtual time.
      CHUNKBATCH ranks WAITING queries by affinity with the chunk groups
      the EXECUTING set is touching; --starvation-dial trades that
      affinity against arrival order (0 = pure affinity, >= 1 = FIFO).
      --graft mirrors the threaded server's in-flight grafting.
      --cache-policy and --tier2-budget mirror `render`'s cache
      hierarchy; the simulator charges tier-2 re-heats their disk
      latency in virtual time (no --spill-dir needed).

  vmqsctl trace    [--strategy NAME] [--op subsample|average] [--threads N]
                   [--ds-mb N] [--seed N] [--batch] [--out FILE.csv]
      Run a simulated workload with schedule tracing and write the
      per-event trace (arrive/start/block/resume/complete/swap_out) as CSV.

  vmqsctl demo
      A short guided tour: exact hits, projection, sub-queries.
";

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_default();
    let rest: Vec<String> = argv.collect();
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "render" => commands::render(&parsed),
        "mip" => commands::mip(&parsed),
        "simulate" => commands::simulate(&parsed),
        "trace" => commands::trace(&parsed),
        "demo" => commands::demo(),
        "help" | "--help" | "-h" | "" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
