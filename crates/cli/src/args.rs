//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or reading options.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A required option was not provided.
    Required(String),
    /// An option's value failed to parse.
    Invalid(String, String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Required(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid(k, v) => write!(f, "invalid value '{v}' for --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s (a `--key` followed
    /// by another `--...` or end of input is a boolean flag).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = items.into_iter().peekable();
        while let Some(tok) = it.next() {
            let key = match tok.strip_prefix("--") {
                Some(k) if !k.is_empty() => k.to_string(),
                _ => return Err(ArgError::Invalid("".into(), tok)),
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    args.opts.insert(key, it.next().unwrap());
                }
                _ => args.flags.push(key),
            }
        }
        Ok(args)
    }

    /// True when the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(|s| s.as_str())
    }

    /// Required string option.
    #[allow(dead_code)] // part of the parser's API; exercised in tests
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::Required(name.into()))
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid(name.into(), v.into())),
        }
    }
}

/// Parses a strategy name (as printed by experiment tables).
pub fn parse_strategy(name: &str) -> Option<vmqs_core::Strategy> {
    use vmqs_core::Strategy;
    Some(match name.to_ascii_uppercase().as_str() {
        "FIFO" => Strategy::Fifo,
        "MUF" => Strategy::Muf,
        "FF" => Strategy::FarthestFirst,
        "CF" => Strategy::closest_first_default(),
        "CNBF" => Strategy::Cnbf,
        "SJF" => Strategy::Sjf,
        "HYBRID" => Strategy::hybrid_default(),
        "CHUNKBATCH" => Strategy::chunk_batch_default(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn options_and_flags() {
        let a = parse("--zoom 4 --batch --out x.ppm");
        assert_eq!(a.get("zoom"), Some("4"));
        assert!(a.flag("batch"));
        assert!(!a.flag("zoom"));
        assert_eq!(a.get_or("zoom", 1u32).unwrap(), 4);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn require_and_invalid() {
        let a = parse("--zoom banana");
        assert_eq!(a.require("out"), Err(ArgError::Required("out".into())));
        assert!(matches!(
            a.get_or::<u32>("zoom", 1),
            Err(ArgError::Invalid(_, _))
        ));
    }

    #[test]
    fn bad_token_rejected() {
        assert!(Args::parse(vec!["zoom".to_string()]).is_err());
    }

    #[test]
    fn strategies_parse() {
        for name in [
            "FIFO",
            "MUF",
            "FF",
            "CF",
            "CNBF",
            "SJF",
            "HYBRID",
            "CHUNKBATCH",
            "cnbf",
            "chunkbatch",
        ] {
            assert!(parse_strategy(name).is_some(), "{name}");
        }
        assert!(parse_strategy("NOPE").is_none());
    }
}
