//! # vmqs-bench
//!
//! The benchmark harness: Criterion micro-benchmarks (under `benches/`)
//! and one binary per figure/table of the paper's evaluation (under
//! `src/bin/`, see DESIGN.md §4 for the experiment index).
//!
//! This library crate carries the small amount of shared code the
//! experiment binaries use: multi-seed averaging and table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{run_paper_experiment, ExpRow};

pub mod plot;

/// Seeds every experiment averages over (the paper reports single runs;
/// averaging a few seeds makes the reproduced shapes stable).
pub const SEEDS: [u64; 3] = [42, 43, 44];

/// Runs the paper workload for each seed and averages the aggregate
/// metrics into one row.
pub fn averaged_run(
    strategy: Strategy,
    op: VmOp,
    threads: usize,
    ds_mb: u64,
    ps_mb: u64,
    mode: SubmissionMode,
) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| run_paper_experiment(strategy, op, threads, ds_mb, ps_mb, mode, seed).1)
        .collect();
    average_rows(&rows)
}

/// Averages the numeric fields of several rows (labels come from the
/// first).
pub fn average_rows(rows: &[ExpRow]) -> ExpRow {
    assert!(!rows.is_empty());
    let n = rows.len() as f64;
    let mut out = rows[0].clone();
    out.trimmed_response = rows.iter().map(|r| r.trimmed_response).sum::<f64>() / n;
    out.mean_response = rows.iter().map(|r| r.mean_response).sum::<f64>() / n;
    out.avg_overlap = rows.iter().map(|r| r.avg_overlap).sum::<f64>() / n;
    out.makespan = rows.iter().map(|r| r.makespan).sum::<f64>() / n;
    out.mean_blocked = rows.iter().map(|r| r.mean_blocked).sum::<f64>() / n;
    out.exact_hits = (rows.iter().map(|r| r.exact_hits).sum::<u64>() as f64 / n) as u64;
    out.partial_hits = (rows.iter().map(|r| r.partial_hits).sum::<u64>() as f64 / n) as u64;
    out
}

/// Prints a titled fixed-width table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The thread counts swept by Fig. 4.
pub const FIG4_THREADS: [usize; 6] = [1, 2, 4, 8, 16, 24];

/// The Data Store sizes (MB) swept by Figs. 5–7.
pub const DS_SWEEP_MB: [u64; 5] = [32, 64, 128, 192, 256];

/// Standard Page Space budget (MB) from §5.
pub const PS_MB: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_rows_averages() {
        let (_, a) = run_paper_experiment(
            Strategy::Fifo,
            VmOp::Subsample,
            2,
            64,
            32,
            SubmissionMode::Interactive,
            42,
        );
        let mut b = a.clone();
        b.trimmed_response = a.trimmed_response + 2.0;
        b.makespan = a.makespan + 4.0;
        let avg = average_rows(&[a.clone(), b]);
        assert!((avg.trimmed_response - (a.trimmed_response + 1.0)).abs() < 1e-9);
        assert!((avg.makespan - (a.makespan + 2.0)).abs() < 1e-9);
    }
}
