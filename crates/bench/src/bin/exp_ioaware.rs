//! §6 extension (3): incorporating low-level resource metrics into
//! scheduling — the I/O-aware dequeue policy vs plain rank order, under
//! thread counts past the disk farm's parallelism (where the Fig. 4
//! degradation lives).

use vmqs_bench::{average_rows, print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::{run_sim, SchedPolicy, SimConfig, SubmissionMode};
use vmqs_workload::{generate, write_csv, ExpRow, WorkloadConfig};

fn run(strategy: Strategy, op: VmOp, threads: usize, policy: SchedPolicy) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate(&WorkloadConfig::paper(op, seed));
            let cfg = SimConfig::paper_baseline()
                .with_strategy(strategy)
                .with_threads(threads)
                .with_ds_budget(64 << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(SubmissionMode::Interactive)
                .with_policy(policy);
            let report = run_sim(cfg, streams);
            ExpRow::from_report(&report, strategy, op, threads, 64)
        })
        .collect();
    average_rows(&rows)
}

fn main() {
    let ioaware = SchedPolicy::IoAware {
        candidates: 8,
        backlog_threshold: 0.5,
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        for strategy in [Strategy::Cnbf, Strategy::Fifo] {
            for threads in [8usize, 16, 24] {
                let plain = run(strategy, op, threads, SchedPolicy::RankOrder);
                let aware = run(strategy, op, threads, ioaware);
                csv.push(format!("rank_order,{}", plain.to_csv()));
                csv.push(format!("io_aware,{}", aware.to_csv()));
                rows.push(vec![
                    strategy.name().to_string(),
                    op.name().to_string(),
                    threads.to_string(),
                    format!("{:.2}", plain.trimmed_response),
                    format!("{:.2}", aware.trimmed_response),
                    format!("{:.1}", plain.makespan),
                    format!("{:.1}", aware.makespan),
                ]);
            }
        }
    }
    print_table(
        "§6 extension: I/O-aware dequeue policy past the disk-farm knee",
        &[
            "strategy",
            "op",
            "threads",
            "resp plain (s)",
            "resp io-aware (s)",
            "mk plain (s)",
            "mk io-aware (s)",
        ],
        &rows,
    );
    write_csv(
        "results/exp_ioaware.csv",
        &format!("policy,{}", ExpRow::csv_header()),
        csv,
    )
    .expect("write csv");
    println!("wrote results/exp_ioaware.csv");
}
