//! Ablation: Data Store eviction policy (LRU vs largest-first vs MRU)
//! under the scarce-cache configuration where eviction decisions matter
//! most.

use vmqs_bench::{average_rows, print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_datastore::EvictionPolicy;
use vmqs_microscope::VmOp;
use vmqs_sim::{run_sim, SimConfig, SubmissionMode};
use vmqs_workload::{generate, write_csv, ExpRow, WorkloadConfig};

fn run(op: VmOp, policy: EvictionPolicy) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate(&WorkloadConfig::paper(op, seed));
            let cfg = SimConfig::paper_baseline()
                .with_strategy(Strategy::Cnbf)
                .with_threads(4)
                .with_ds_budget(32 << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(SubmissionMode::Interactive)
                .with_ds_policy(policy);
            let report = run_sim(cfg, streams);
            ExpRow::from_report(&report, Strategy::Cnbf, op, 4, 32)
        })
        .collect();
    average_rows(&rows)
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        for (name, policy) in [
            ("LRU", EvictionPolicy::Lru),
            ("LargestFirst", EvictionPolicy::LargestFirst),
            ("MRU", EvictionPolicy::Mru),
        ] {
            let row = run(op, policy);
            csv.push(format!("{name},{}", row.to_csv()));
            rows.push(vec![
                name.to_string(),
                op.name().to_string(),
                format!("{:.2}", row.trimmed_response),
                format!("{:.1}", row.makespan),
                format!("{:.3}", row.avg_overlap),
                row.exact_hits.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation: DS eviction policy (CNBF, DS = 32 MB, 4 threads)",
        &[
            "policy",
            "op",
            "t-mean resp (s)",
            "makespan (s)",
            "overlap",
            "exact hits",
        ],
        &rows,
    );
    write_csv(
        "results/exp_eviction.csv",
        &format!("policy,{}", ExpRow::csv_header()),
        csv,
    )
    .expect("write csv");
    println!("wrote results/exp_eviction.csv");
}
