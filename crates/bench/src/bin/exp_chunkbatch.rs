//! ChunkBatch evaluation: fig4-style strategy sweep on a *chunk-skewed*
//! workload, reporting cold page reads. The workload
//! ([`vmqs_workload::chunk_skewed`]) issues four disjoint tiles inside
//! each of G chunk groups in group-round-robin order, so the tiles share
//! disk pages but have zero result overlap: the Data Store cannot help,
//! and the only lever is scheduling tiles of the same chunk while its
//! page is still resident. With a Page Space holding G/2 pages, arrival
//! order re-reads every page per tile (~4G cold reads); chunk-affinity
//! batching reads each page about once (~G).
//!
//! Sections:
//!   1. strategy sweep — all six paper strategies + CHUNKBATCH, at 2 and
//!      4 threads; asserts CHUNKBATCH does the fewest cold reads.
//!   2. starvation-dial sweep — cold reads vs worst-case queue wait as
//!      the dial moves from pure affinity (0) to pure FIFO (1).
//!
//! Flags: `--quick` (smaller workload, CI-sized), `--fault-rate F`
//! (seeded transient read faults, exercised by the graft-smoke CI job),
//! `--fault-seed N`. On an assertion failure the run writes the losing
//! configuration's event trace to `results/chunkbatch_fail_trace.json`
//! and exits non-zero so CI can upload the artifact.

use vmqs_bench::print_table;
use vmqs_core::Strategy;
use vmqs_sim::{run_sim, SimConfig, SubmissionMode};
use vmqs_storage::FaultConfig;
use vmqs_workload::{chunk_skewed, write_csv, CHUNK_SKEW_TILES_PER_GROUP};

/// One measured row of either sweep.
struct Row {
    strategy: String,
    threads: usize,
    cold_reads: u64,
    ps_hits: u64,
    trimmed_response: f64,
    max_wait: f64,
    makespan: f64,
    grafted: u64,
}

fn run_one(cfg: SimConfig, groups: usize) -> Row {
    let report = run_sim(cfg, chunk_skewed(groups));
    assert_eq!(
        report.records.len(),
        groups * CHUNK_SKEW_TILES_PER_GROUP,
        "every submitted query must complete"
    );
    Row {
        strategy: cfg.strategy.to_string(),
        threads: cfg.threads,
        cold_reads: report.ps_stats.pages_fetched,
        ps_hits: report.ps_stats.hits,
        trimmed_response: report.trimmed_mean_response(),
        max_wait: report
            .records
            .iter()
            .map(|r| r.wait_time())
            .fold(0.0, f64::max),
        makespan: report.makespan,
        grafted: report.grafted,
    }
}

fn table_rows(rows: &[Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.threads.to_string(),
                r.cold_reads.to_string(),
                r.ps_hits.to_string(),
                format!("{:.2}", r.trimmed_response),
                format!("{:.2}", r.max_wait),
                format!("{:.2}", r.makespan),
                r.grafted.to_string(),
            ]
        })
        .collect()
}

const HEADER: [&str; 8] = [
    "strategy",
    "threads",
    "cold reads",
    "ps hits",
    "t-mean resp (s)",
    "max wait (s)",
    "makespan (s)",
    "grafted",
];

fn csv_line(r: &Row) -> String {
    format!(
        "{},{},{},{},{:.4},{:.4},{:.4},{}",
        r.strategy,
        r.threads,
        r.cold_reads,
        r.ps_hits,
        r.trimmed_response,
        r.max_wait,
        r.makespan,
        r.grafted
    )
}

/// Dumps the event trace of a failing configuration so CI can attach it.
fn dump_fail_trace(cfg: SimConfig, groups: usize, why: &str) -> ! {
    let report = run_sim(
        cfg.with_observe(true).with_trace(true),
        chunk_skewed(groups),
    );
    std::fs::create_dir_all("results").ok();
    let path = "results/chunkbatch_fail_trace.json";
    std::fs::write(path, vmqs_obs::events_to_json(&report.events)).expect("write fail trace");
    eprintln!("FAIL: {why}\n      event trace written to {path}");
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut fault_rate = 0.0f64;
    let mut fault_seed = 7u64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--fault-rate" => {
                i += 1;
                fault_rate = argv[i].parse().expect("--fault-rate takes a float");
            }
            "--fault-seed" => {
                i += 1;
                fault_seed = argv[i].parse().expect("--fault-seed takes an integer");
            }
            other => {
                eprintln!(
                    "unknown flag '{other}' (expected --quick | --fault-rate F | --fault-seed N)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // The default dial (0.05) lets full chunk affinity override up to 20
    // arrival positions; the group-round-robin stride equals `groups`, so
    // keep groups below that window.
    let groups = if quick { 12 } else { 16 };
    let ps_pages = (groups / 2) as u64;
    let fault = if fault_rate > 0.0 {
        FaultConfig::transient(fault_rate, fault_seed)
    } else {
        FaultConfig::none()
    };
    let base = SimConfig::paper_baseline()
        .with_mode(SubmissionMode::Batch)
        .with_batch_gate(true)
        .with_ps_budget(ps_pages * vmqs_microscope::PAGE_SIZE as u64)
        .with_faults(fault);
    let thread_sweep: &[usize] = if quick { &[2] } else { &[2, 4] };

    // Section 1: strategy sweep on the chunk-skewed workload.
    let mut strategies: Vec<Strategy> = Strategy::paper_set().to_vec();
    strategies.push(Strategy::chunk_batch_default());
    let mut rows = Vec::new();
    for &threads in thread_sweep {
        for &strategy in &strategies {
            let cfg = base
                .with_strategy(strategy)
                .with_threads(threads)
                // Grafting rides along exactly as the CI smoke job runs it;
                // the tiles never share results, so grafted must stay 0 and
                // the strategies stay comparable on cold reads alone.
                .with_graft(true);
            rows.push(run_one(cfg, groups));
        }
    }
    print_table(
        &format!(
            "ChunkBatch: cold page reads on a chunk-skewed workload \
             ({groups} groups x {CHUNK_SKEW_TILES_PER_GROUP} tiles, PS = {ps_pages} pages)"
        ),
        &HEADER,
        &table_rows(&rows),
    );

    for &threads in thread_sweep {
        let at = |name: &str| {
            rows.iter()
                .find(|r| r.threads == threads && r.strategy.starts_with(name))
                .unwrap()
        };
        let cb = at("CHUNKBATCH");
        for strategy in &strategies[..strategies.len() - 1] {
            let paper = at(strategy.name());
            if cb.cold_reads >= paper.cold_reads {
                dump_fail_trace(
                    base.with_strategy(Strategy::chunk_batch_default())
                        .with_threads(threads)
                        .with_graft(true),
                    groups,
                    &format!(
                        "CHUNKBATCH did {} cold reads at {} threads, not fewer than {} ({})",
                        cb.cold_reads, threads, paper.cold_reads, paper.strategy
                    ),
                );
            }
        }
        if cb.grafted != 0 {
            dump_fail_trace(
                base.with_strategy(Strategy::chunk_batch_default())
                    .with_threads(threads)
                    .with_graft(true),
                groups,
                "disjoint tiles must never graft",
            );
        }
    }

    // Section 2: the starvation dial, throughput (cold reads) against
    // aging (worst queue wait).
    let dials: &[f64] = if quick {
        &[0.0, 0.05, 1.0]
    } else {
        &[0.0, 0.02, 0.05, 0.25, 1.0]
    };
    let mut dial_rows = Vec::new();
    for &dial in dials {
        let cfg = base
            .with_strategy(Strategy::ChunkBatch {
                starvation_dial: dial,
            })
            .with_threads(2)
            .with_graft(true);
        dial_rows.push(run_one(cfg, groups));
    }
    print_table(
        "ChunkBatch: starvation dial (0 = pure affinity, 1 = FIFO), 2 threads",
        &HEADER,
        &table_rows(&dial_rows),
    );
    let affinity = &dial_rows[0];
    let fifo_like = dial_rows.last().unwrap();
    if affinity.cold_reads >= fifo_like.cold_reads {
        dump_fail_trace(
            base.with_strategy(Strategy::ChunkBatch {
                starvation_dial: 0.0,
            })
            .with_threads(2)
            .with_graft(true),
            groups,
            "pure affinity must do fewer cold reads than the dial-1 FIFO limit",
        );
    }

    let csv: Vec<String> = rows.iter().chain(dial_rows.iter()).map(csv_line).collect();
    let path = "results/exp_chunkbatch.csv";
    write_csv(
        path,
        "strategy,threads,cold_reads,ps_hits,trimmed_response,max_wait,makespan,grafted",
        csv,
    )
    .expect("write csv");
    println!("wrote {path}");
    println!("OK: CHUNKBATCH read the fewest cold pages at every thread count");
}
