//! §6 extension (1): self-tuning of the combined strategy. Compares fixed
//! HYBRID weight settings against the hill-climbing tuner that adjusts the
//! SJF weight online from windowed response times.

use vmqs_bench::{average_rows, print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::{run_sim, SimConfig, SubmissionMode, TunerConfig};
use vmqs_workload::{generate, write_csv, ExpRow, WorkloadConfig};

fn run(strategy: Strategy, op: VmOp, tuner: Option<TunerConfig>, mode: SubmissionMode) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate(&WorkloadConfig::paper(op, seed));
            let streams = match mode {
                SubmissionMode::Interactive => streams,
                SubmissionMode::Batch => vmqs_workload::flatten_to_batch(&streams),
            };
            let mut cfg = SimConfig::paper_baseline()
                .with_strategy(strategy)
                .with_threads(4)
                .with_ds_budget(64 << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(mode);
            cfg.tuner = tuner;
            let report = run_sim(cfg, streams);
            ExpRow::from_report(&report, strategy, op, 4, 64)
        })
        .collect();
    average_rows(&rows)
}

fn main() {
    let fixed = [
        Strategy::Hybrid {
            cnbf_weight: 1.0,
            sjf_weight: 0.1,
        },
        Strategy::hybrid_default(),
        Strategy::Hybrid {
            cnbf_weight: 1.0,
            sjf_weight: 10.0,
        },
    ];
    for (mode, mode_name) in [
        (SubmissionMode::Interactive, "interactive"),
        (SubmissionMode::Batch, "batch"),
    ] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for op in [VmOp::Subsample, VmOp::Average] {
            for s in fixed {
                let row = run(s, op, None, mode);
                let label = format!("{s}");
                csv.push(format!("fixed,{}", row.to_csv()));
                rows.push(vec![
                    label,
                    op.name().to_string(),
                    format!("{:.2}", row.trimmed_response),
                    format!("{:.1}", row.makespan),
                    format!("{:.3}", row.avg_overlap),
                ]);
            }
            let tuned = run(
                Strategy::hybrid_default(),
                op,
                Some(TunerConfig::default()),
                mode,
            );
            csv.push(format!("self_tuning,{}", tuned.to_csv()));
            rows.push(vec![
                "HYBRID+tuner".to_string(),
                op.name().to_string(),
                format!("{:.2}", tuned.trimmed_response),
                format!("{:.1}", tuned.makespan),
                format!("{:.3}", tuned.avg_overlap),
            ]);
        }
        print_table(
            &format!("§6 extension: self-tuning hybrid ({mode_name}, 4 threads, DS = 64 MB)"),
            &[
                "strategy",
                "op",
                "t-mean resp (s)",
                "makespan (s)",
                "overlap",
            ],
            &rows,
        );
        let path = format!("results/exp_adaptive_{mode_name}.csv");
        write_csv(&path, &format!("mode,{}", ExpRow::csv_header()), csv).expect("write csv");
        println!("wrote {path}");
    }
}
