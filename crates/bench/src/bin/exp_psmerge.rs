//! Ablation: Page Space Manager I/O-request merging on/off.
//!
//! The PS "keeps track of I/O requests received from multiple queries so
//! that overlapping I/O requests are reordered and merged … to minimize
//! I/O overhead" (paper §2). With merging off, every missed page is its
//! own disk request and pays its own positioning cost.

use vmqs_bench::{print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::{SimConfig, Simulator, SubmissionMode};
use vmqs_workload::{generate, write_csv, ExpRow, WorkloadConfig};

fn run(op: VmOp, merging: bool) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate(&WorkloadConfig::paper(op, seed));
            let cfg = SimConfig::paper_baseline()
                .with_strategy(Strategy::Cnbf)
                .with_threads(4)
                .with_ds_budget(64 << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(SubmissionMode::Interactive);
            let mut sim = Simulator::new(cfg, streams);
            sim.set_ps_merging(merging);
            let report = sim.run();
            ExpRow::from_report(&report, Strategy::Cnbf, op, 4, 64)
        })
        .collect();
    vmqs_bench::average_rows(&rows)
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        let on = run(op, true);
        let off = run(op, false);
        let speedup = off.makespan / on.makespan;
        csv.push(format!("merged,{}", on.to_csv()));
        csv.push(format!("unmerged,{}", off.to_csv()));
        rows.push(vec![
            op.name().to_string(),
            format!("{:.1}", on.makespan),
            format!("{:.1}", off.makespan),
            format!("{speedup:.2}x"),
            format!("{:.2}", on.trimmed_response),
            format!("{:.2}", off.trimmed_response),
        ]);
    }
    print_table(
        "Ablation: PS run merging (CNBF, 4 threads, DS = 64 MB)",
        &[
            "op",
            "merged makespan (s)",
            "unmerged makespan (s)",
            "speedup",
            "resp merged (s)",
            "resp unmerged (s)",
        ],
        &rows,
    );
    write_csv(
        "results/exp_psmerge.csv",
        &format!("mode,{}", ExpRow::csv_header()),
        csv,
    )
    .expect("write csv");
    println!("wrote results/exp_psmerge.csv");
}
