//! E1 reproduction (paper §5, text): the effect of Data Store caching on
//! FIFO and SJF — strategies that do *not* consider cache state when
//! scheduling.
//!
//! The paper reports overall system performance improved "by as much as
//! 35% and 70% for FIFO and 40% and 70% for SJF, for subsampling and
//! averaging implementations" respectively, and that performance grows
//! with DS memory. This binary compares caching off (DS = 0) against DS ∈
//! {64, 128} MB and prints the improvements.

use vmqs_bench::{averaged_run, print_table, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        for strategy in [Strategy::Fifo, Strategy::Sjf] {
            let off = averaged_run(strategy, op, 4, 0, PS_MB, SubmissionMode::Interactive);
            csv.push(off.to_csv());
            for ds_mb in [64u64, 128] {
                let on = averaged_run(strategy, op, 4, ds_mb, PS_MB, SubmissionMode::Interactive);
                let improvement = 100.0 * (off.makespan - on.makespan) / off.makespan;
                csv.push(on.to_csv());
                rows.push(vec![
                    on.strategy.clone(),
                    on.op.clone(),
                    ds_mb.to_string(),
                    format!("{:.1}", off.makespan),
                    format!("{:.1}", on.makespan),
                    format!("{:.0}%", improvement),
                    format!("{:.3}", on.avg_overlap),
                ]);
            }
        }
    }
    print_table(
        "E1: effect of result caching on FIFO and SJF (vs DS = 0)",
        &[
            "strategy",
            "op",
            "DS (MB)",
            "no-cache (s)",
            "cached (s)",
            "improvement",
            "overlap",
        ],
        &rows,
    );
    write_csv("results/exp_caching.csv", ExpRow::csv_header(), csv).expect("write csv");
    println!("wrote results/exp_caching.csv");
}
