//! End-to-end throughput benchmark for the *real threaded engine*.
//!
//! Runs a seeded Virtual Microscope workload (16 interactive clients x 16
//! queries, and the same 256 queries as one batch) for both VM ops at
//! 1/2/4/8 workers, and writes `BENCH_e2e.json` with queries/sec,
//! p50/p95/p99 response times reconstructed from the observability event
//! log, and the Data Store hit ratio per configuration. This is
//! the repo's perf-trajectory artifact: run it before and after an engine
//! change to quantify the end-to-end effect.
//!
//! Two extra sections stress the scheduler rather than the kernels:
//!
//! - `contention_results`: tiny disjoint queries replayed after a warmup
//!   pass so ~100% of lookups are Data Store exact hits. Per-query compute
//!   is near zero, so throughput is bounded by scheduler and lock overhead
//!   — the configuration where pre-sharding the engine *lost* ground as
//!   workers were added (DESIGN.md §12).
//! - `graft_contention_results`: the contention tiles offered *cold*
//!   with several interleaved copies of every tile, with grafting on and
//!   off. With grafting on, each distinct tile is computed exactly once:
//!   later copies either graft onto the in-flight producer or exact-hit
//!   its published result, and `duplicate_full_computes` must be 0
//!   (ROADMAP item 1, DESIGN.md §13).
//! - `overload_results`: the batch offered as a burst through the
//!   degrade/shed ladder, once per load factor at the largest worker count.
//!
//! Usage:
//!   cargo run -p vmqs-bench --release --bin bench_e2e
//!   cargo run -p vmqs-bench --release --bin bench_e2e -- --quick
//!   cargo run -p vmqs-bench --release --bin bench_e2e -- \
//!       --seed 42 --workers 1,2,4,8 --out BENCH_e2e.json

use std::sync::Arc;

use vmqs_core::{ClientId, DatasetId, OverloadConfig, Rect, Strategy};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_server::{QueryServer, ServerConfig, ServerError};
use vmqs_sim::{run_sim, ClientStream, SimConfig, SubmissionMode};
use vmqs_storage::SyntheticSource;
use vmqs_workload::{
    flatten_to_batch, generate, run_server_batch, run_server_interactive, zipfian, WorkloadConfig,
};

struct BenchParams {
    seed: u64,
    workers: Vec<usize>,
    out_path: String,
    quick: bool,
}

fn parse_args() -> BenchParams {
    let mut p = BenchParams {
        seed: 42,
        workers: vec![1, 2, 4, 8],
        out_path: "BENCH_e2e.json".to_string(),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => p.quick = true,
            "--seed" => {
                p.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--workers" => {
                let list = args.next().expect("--workers needs a comma list");
                p.workers = list
                    .split(',')
                    .map(|w| w.parse().expect("worker count"))
                    .collect();
            }
            "--out" => p.out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_e2e [--quick] [--seed N] [--workers 1,2,4,8] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    if p.quick {
        p.workers = vec![1, 4];
    }
    p
}

/// The benchmark workload: the paper's 16-client x 16-query interactive
/// shape (8/6/2 clients over three datasets, zooms 1/2/4/8), scaled to
/// an output side that keeps a full sweep in CI-friendly time.
fn bench_workload(op: VmOp, seed: u64, quick: bool) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper(op, seed);
    if quick {
        cfg.output_side = 64;
        cfg.queries_per_client = 4;
    } else {
        cfg.output_side = 256;
    }
    cfg
}

fn bench_server(workers: usize) -> QueryServer {
    // Budgets scaled to the 256px output (~192 KiB/image): the DS holds a
    // useful fraction of the workload but still evicts, like the paper's
    // 64 MB budget against 3 MB images.
    let cfg = ServerConfig::small()
        .with_strategy(Strategy::Cnbf)
        .with_threads(workers)
        .with_ds_budget(16 << 20)
        .with_ps_budget(8 << 20)
        .with_observability(true);
    QueryServer::new(cfg, Arc::new(SyntheticSource::new()))
}

struct RunResult {
    mode: &'static str,
    op: &'static str,
    workers: usize,
    queries: usize,
    wall_s: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    ds_hit_ratio: f64,
    exact_hits: u64,
    partial_hits: u64,
    misses: u64,
    /// Per-query answer paths (exactly one per completed query), from the
    /// server summary — unlike the raw Data Store counters these are not
    /// inflated by post-wait re-probes.
    path_exact: usize,
    path_partial: usize,
    path_full: usize,
    /// Post-wait Data Store re-probes and how many found an exact match.
    relookups: u64,
    relookup_hits: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn run_once(mode: &'static str, op: VmOp, workers: usize, seed: u64, quick: bool) -> RunResult {
    let streams = generate(&bench_workload(op, seed, quick));
    let total: usize = streams.iter().map(|s| s.queries.len()).sum();
    let server = bench_server(workers);

    let start = vmqs_core::clock::now();
    let records = match mode {
        "interactive" => run_server_interactive(&server, streams),
        _ => {
            let batch = flatten_to_batch(&streams)
                .into_iter()
                .flat_map(|s| s.queries)
                .collect();
            run_server_batch(&server, batch)
        }
    };
    let wall = start.elapsed().as_secs_f64();

    assert_eq!(records.len(), total, "every query must complete");
    let ds = server.ds_stats();
    let summary = server.summary();
    let (relookups, relookup_hits) = server.relookup_stats();
    let events = server.events();
    server.shutdown();

    // Submission -> completion latencies come from the event log, not the
    // client-side records: the timeline reconstruction is the artifact this
    // benchmark certifies.
    let mut resp_ms: Vec<f64> = vmqs_obs::timeline::latencies(&events)
        .into_iter()
        .map(|s| s * 1e3)
        .collect();
    assert_eq!(resp_ms.len(), total, "event log must cover every query");
    resp_ms.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = resp_ms.iter().sum::<f64>() / resp_ms.len() as f64;
    let lookups = ds.exact_hits + ds.partial_hits + ds.misses;
    RunResult {
        mode,
        op: op.name(),
        workers,
        queries: total,
        wall_s: wall,
        qps: total as f64 / wall,
        p50_ms: percentile(&resp_ms, 0.50),
        p95_ms: percentile(&resp_ms, 0.95),
        p99_ms: percentile(&resp_ms, 0.99),
        mean_ms,
        ds_hit_ratio: if lookups == 0 {
            0.0
        } else {
            (ds.exact_hits + ds.partial_hits) as f64 / lookups as f64
        },
        exact_hits: ds.exact_hits,
        partial_hits: ds.partial_hits,
        misses: ds.misses,
        path_exact: summary.exact_hits,
        path_partial: summary.partial_reuse,
        path_full: summary.full_compute,
        relookups,
        relookup_hits,
    }
}

/// One row of the overload section: the batch workload offered as a
/// burst at `load_factor` x the admission bound, through the full
/// degrade/shed ladder (DESIGN.md §10).
struct OverloadResult {
    load_factor: usize,
    workers: usize,
    offered: usize,
    admitted: u64,
    shed: u64,
    rejected: u64,
    degraded: u64,
    shed_rate: f64,
    degraded_fraction: f64,
    wall_s: f64,
    p95_admitted_ms: f64,
}

/// Offers the whole batch against paused workers so the admission
/// ladder sees the burst at `load_factor` x `max_pending`, then resumes
/// and measures the survivors. p95 is over *admitted-and-completed*
/// queries only — rejected/shed queries get an immediate typed answer,
/// not a latency.
fn run_overload_once(load_factor: usize, workers: usize, seed: u64, quick: bool) -> OverloadResult {
    let streams = generate(&bench_workload(VmOp::Average, seed, quick));
    let specs: Vec<_> = flatten_to_batch(&streams)
        .into_iter()
        .flat_map(|s| s.queries)
        .collect();
    let offered = specs.len();
    let max_pending = offered / load_factor;
    let ov = OverloadConfig::default()
        .with_max_pending(max_pending)
        .with_degrade_threshold(0.5)
        .with_shed_threshold(0.9);
    let cfg = ServerConfig::small()
        .with_strategy(Strategy::Cnbf)
        .with_threads(workers)
        .with_ds_budget(16 << 20)
        .with_ps_budget(8 << 20)
        .with_observability(true)
        .with_start_paused(true)
        .with_overload(ov);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));

    let start = vmqs_core::clock::now();
    let handles = server.submit_batch(specs);
    server.resume_workers();
    let (mut admitted, mut shed, mut rejected) = (0u64, 0u64, 0u64);
    for h in handles {
        match h.wait() {
            Ok(_) => admitted += 1,
            Err(ServerError::Shed { .. }) => shed += 1,
            Err(ServerError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected outcome under overload: {e}"),
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let metrics = server.metrics();
    let events = server.events();
    server.shutdown();

    let degraded = metrics
        .counters
        .get("vmqs_queries_degraded_total")
        .copied()
        .unwrap_or(0);
    let mut resp_ms: Vec<f64> = vmqs_obs::timeline::latencies(&events)
        .into_iter()
        .map(|s| s * 1e3)
        .collect();
    assert_eq!(resp_ms.len() as u64, admitted, "one latency per completion");
    resp_ms.sort_by(|a, b| a.total_cmp(b));
    OverloadResult {
        load_factor,
        workers,
        offered,
        admitted,
        shed,
        rejected,
        degraded,
        shed_rate: shed as f64 / offered as f64,
        degraded_fraction: degraded as f64 / offered as f64,
        wall_s: wall,
        p95_admitted_ms: percentile(&resp_ms, 0.95),
    }
}

/// One row of the contention section: the steady-state throughput of
/// tiny, fully cached queries at `workers` threads.
struct ContentionResult {
    workers: usize,
    queries: usize,
    wall_s: f64,
    qps: f64,
    ds_hit_ratio: f64,
}

const CONTENTION_CLIENTS: usize = 16;
const CONTENTION_TILES_PER_CLIENT: usize = 8;
const CONTENTION_TILE: u32 = 32;

/// The distinct tiles of the contention workload: disjoint 32x32 windows
/// at zoom 1, eight per client, all on one slide. Disjoint footprints mean
/// no cross-query reuse edges — after warmup every query is an exact hit
/// and the Data Store never evicts, so the run measures pure scheduling
/// overhead rather than kernels or cache policy.
fn contention_tiles(seed: u64) -> Vec<Vec<VmQuery>> {
    let total = CONTENTION_CLIENTS * CONTENTION_TILES_PER_CLIENT;
    let per_row = 4096 / CONTENTION_TILE as usize;
    let slide = SlideDataset::new(DatasetId(0), 4096, 4096);
    (0..CONTENTION_CLIENTS)
        .map(|c| {
            (0..CONTENTION_TILES_PER_CLIENT)
                .map(|t| {
                    // The seed rotates which tiles each client owns, so the
                    // shard assignment pattern is not an artifact of client
                    // numbering.
                    let i = (c * CONTENTION_TILES_PER_CLIENT + t + seed as usize) % total;
                    let x = (i % per_row) as u32 * CONTENTION_TILE;
                    let y = (i / per_row) as u32 * CONTENTION_TILE;
                    VmQuery::new(
                        slide,
                        Rect::new(x, y, CONTENTION_TILE, CONTENTION_TILE),
                        1,
                        VmOp::Subsample,
                    )
                })
                .collect()
        })
        .collect()
}

/// Warms the Data Store with every distinct tile, then times interactive
/// clients replaying their tiles `repeats` times. All 128 distinct results
/// (~3 KiB each) fit the budget with two orders of magnitude to spare, so
/// the timed phase runs at ~100% exact hits.
fn run_contention_once(workers: usize, seed: u64, quick: bool) -> ContentionResult {
    let tiles = contention_tiles(seed);
    let repeats = if quick { 5 } else { 40 };
    let server = bench_server(workers);

    let warmup: Vec<VmQuery> = tiles.iter().flatten().copied().collect();
    for h in server.submit_batch(warmup) {
        h.wait().expect("warmup query failed");
    }
    let warmed = server.ds_stats();

    let streams: Vec<ClientStream> = tiles
        .iter()
        .enumerate()
        .map(|(c, ts)| ClientStream {
            client: ClientId(c as u64),
            queries: std::iter::repeat_n(ts.clone(), repeats).flatten().collect(),
        })
        .collect();
    let timed: usize = streams.iter().map(|s| s.queries.len()).sum();

    let start = vmqs_core::clock::now();
    let records = run_server_interactive(&server, streams);
    let wall = start.elapsed().as_secs_f64();
    let ds = server.ds_stats();
    server.shutdown();
    assert_eq!(
        records.len(),
        timed + tiles.len() * CONTENTION_TILES_PER_CLIENT
    );

    // Hit ratio over the timed phase only (warmup misses subtracted out).
    let hits = (ds.exact_hits + ds.partial_hits) - (warmed.exact_hits + warmed.partial_hits);
    let lookups = (ds.exact_hits + ds.partial_hits + ds.misses)
        - (warmed.exact_hits + warmed.partial_hits + warmed.misses);
    ContentionResult {
        workers,
        queries: timed,
        wall_s: wall,
        qps: timed as f64 / wall,
        ds_hit_ratio: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    }
}

/// One row of the graft-contention section: a few hot windows, each
/// submitted `GRAFT_HOT_COPIES` times, offered cold as one paused batch.
struct GraftContentionResult {
    graft: bool,
    workers: usize,
    queries: usize,
    distinct: usize,
    wall_s: f64,
    qps: f64,
    path_exact: usize,
    path_partial: usize,
    path_full: usize,
    grafted: usize,
    duplicate_full_computes: u64,
}

const GRAFT_HOT_WINDOWS: usize = 8;
const GRAFT_HOT_COPIES: usize = 8;
const GRAFT_HOT_SIDE: u32 = 256;

/// The hot windows: disjoint 256x256 averaging tiles — orders of
/// magnitude more per-query compute than the 32x32 contention tiles, so
/// a copy's dequeue reliably lands inside its producer's execution
/// window. All windows are chosen (by scanning the tile grid) to hash to
/// shard 0, which makes every other worker's home shard empty: they
/// become dedicated stealers, and stealing during the producer's
/// execution is exactly the race grafting resolves.
fn graft_hot_windows(workers: usize) -> Vec<VmQuery> {
    let slide = SlideDataset::new(DatasetId(0), 4096, 4096);
    let per_row = 4096 / GRAFT_HOT_SIDE;
    let mut out = Vec::with_capacity(GRAFT_HOT_WINDOWS);
    'scan: for gy in 0..per_row {
        for gx in 0..per_row {
            let q = VmQuery::new(
                slide,
                Rect::new(
                    gx * GRAFT_HOT_SIDE,
                    gy * GRAFT_HOT_SIDE,
                    GRAFT_HOT_SIDE,
                    GRAFT_HOT_SIDE,
                ),
                1,
                VmOp::Average,
            );
            if vmqs_core::shard_of_spec(&q, workers) == 0 {
                out.push(q);
                if out.len() == GRAFT_HOT_WINDOWS {
                    break 'scan;
                }
            }
        }
    }
    assert_eq!(
        out.len(),
        GRAFT_HOT_WINDOWS,
        "the 16x16 tile grid must yield enough shard-0 windows"
    );
    out
}

/// Offers `GRAFT_HOT_COPIES` adjacent copies of every hot window as one
/// cold paused batch, so copies of a window race its first compute.
/// Identical predicates hash to the same home shard, so the copies queue
/// behind their producer; the other workers steal them mid-flight. With
/// grafting on, a stolen copy subscribes to the EXECUTING producer
/// instead of recomputing, and `duplicate_full_computes` stays 0: every
/// window is computed exactly once.
fn run_graft_contention_once(graft: bool, workers: usize) -> GraftContentionResult {
    let distinct = graft_hot_windows(workers);
    let mut specs = Vec::with_capacity(distinct.len() * GRAFT_HOT_COPIES);
    for &w in &distinct {
        for _ in 0..GRAFT_HOT_COPIES {
            specs.push(w);
        }
    }
    let total = specs.len();
    // FIFO, not CNBF: CNBF *deprioritizes* queries overlapping an
    // EXECUTING peer, which dissolves exactly the producer/copy race this
    // section measures. FIFO dequeues the adjacent copies immediately.
    let cfg = ServerConfig::small()
        .with_strategy(Strategy::Fifo)
        .with_threads(workers)
        .with_ds_budget(16 << 20)
        .with_ps_budget(8 << 20)
        .with_observability(true)
        .with_start_paused(true)
        .with_graft(graft);
    let server = QueryServer::new(cfg, Arc::new(SyntheticSource::new()));

    let start = vmqs_core::clock::now();
    let handles = server.submit_batch(specs);
    server.resume_workers();
    for h in handles {
        h.wait().expect("graft-contention query failed");
    }
    let wall = start.elapsed().as_secs_f64();
    let summary = server.summary();
    server.shutdown();

    assert_eq!(summary.completed, total, "every query must complete");
    if graft {
        assert_eq!(
            summary.duplicate_full_computes, 0,
            "grafting + producer-affinity dequeue must eliminate duplicate \
             full computes (ROADMAP item 1)"
        );
        assert_eq!(
            summary.full_compute,
            distinct.len(),
            "with grafting on, each distinct window is computed exactly once"
        );
        if workers > 1 {
            assert!(
                summary.grafted > 0,
                "concurrent copies of a window must graft onto its producer"
            );
        }
    }
    GraftContentionResult {
        graft,
        workers,
        queries: total,
        distinct: distinct.len(),
        wall_s: wall,
        qps: total as f64 / wall,
        path_exact: summary.exact_hits,
        path_partial: summary.partial_reuse,
        path_full: summary.full_compute,
        grafted: summary.grafted,
        duplicate_full_computes: summary.duplicate_full_computes,
    }
}

/// One row of the cache-pressure section: the zipfian workload in the
/// discrete-event simulator (virtual time, bit-for-bit deterministic per
/// seed) at equal tier-1 memory across policies. `recomputed_bytes` is
/// the tentpole metric of DESIGN.md §14: output bytes derived again
/// because a previously computed result had been dropped.
struct CachePressureResult {
    policy: &'static str,
    tier2_tiles: u64,
    queries: usize,
    recomputed_bytes: u64,
    exact_hits: u64,
    spilled: u64,
    restored: u64,
    /// Reduction in recomputed bytes vs the `lru` row (0 for `lru`).
    reduction_vs_lru_pct: f64,
}

/// Output bytes of one zipfian catalog tile (256² RGB).
const PRESSURE_TILE_BYTES: u64 = 3 * 256 * 256;

/// Zipfian cache pressure at equal tier-1 memory: recency eviction vs
/// the benefit-aware policy, with and without the tier-2 spill store
/// (tier 1 = 8 tiles, tier 2 = 32 tiles, catalog far above both). The
/// cost-based + spill arm must cut recomputed bytes by >= 25%.
fn run_cache_pressure(seed: u64, quick: bool) -> Vec<CachePressureResult> {
    let (catalog, draws) = if quick { (64, 256) } else { (128, 1024) };
    let arms: [(&'static str, vmqs_datastore::EvictionPolicy, u64); 3] = [
        ("lru", vmqs_datastore::EvictionPolicy::Lru, 0),
        ("cost", vmqs_datastore::EvictionPolicy::CostBased, 0),
        ("cost+spill", vmqs_datastore::EvictionPolicy::CostBased, 32),
    ];
    let mut out = Vec::new();
    let mut lru_recomputed = 0u64;
    for (policy, p, tier2_tiles) in arms {
        let cfg = SimConfig::paper_baseline()
            .with_threads(4)
            .with_ds_budget(8 * PRESSURE_TILE_BYTES)
            // A tight page cache keeps recomputation honest: re-deriving
            // an evicted result re-scans its inputs from (virtual) disk.
            .with_ps_budget(1 << 20)
            .with_mode(SubmissionMode::Interactive)
            .with_cache_policy(p)
            .with_tier2_budget(tier2_tiles * PRESSURE_TILE_BYTES);
        let r = run_sim(cfg, zipfian(catalog, draws, 1.1, seed));
        assert_eq!(r.records.len(), draws, "every draw must complete");
        if policy == "lru" {
            lru_recomputed = r.recomputed_bytes;
        }
        let reduction = if policy == "lru" {
            0.0
        } else {
            100.0 * (1.0 - r.recomputed_bytes as f64 / lru_recomputed as f64)
        };
        if policy == "cost+spill" {
            assert!(
                reduction >= 25.0,
                "cost-based + spill must recompute >= 25% fewer bytes than \
                 recency at equal tier-1 memory, got {reduction:.1}%"
            );
        }
        out.push(CachePressureResult {
            policy,
            tier2_tiles,
            queries: draws,
            recomputed_bytes: r.recomputed_bytes,
            exact_hits: r.ds_stats.exact_hits,
            spilled: r.spilled,
            restored: r.restored,
            reduction_vs_lru_pct: reduction,
        });
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    params: &BenchParams,
    results: &[RunResult],
    contention: &[ContentionResult],
    graft_contention: &[GraftContentionResult],
    overload: &[OverloadResult],
    cache_pressure: &[CachePressureResult],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"benchmark\": \"bench_e2e\",")?;
    writeln!(f, "  \"seed\": {},", params.seed)?;
    writeln!(f, "  \"quick\": {},", params.quick)?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"mode\": \"{}\", \"op\": \"{}\", \"workers\": {}, \"queries\": {}, \
             \"wall_s\": {:.4}, \"queries_per_sec\": {:.3}, \"p50_response_ms\": {:.3}, \
             \"p95_response_ms\": {:.3}, \"p99_response_ms\": {:.3}, \
             \"mean_response_ms\": {:.3}, \"ds_hit_ratio\": {:.4}, \
             \"exact_hits\": {}, \"partial_hits\": {}, \"misses\": {}, \
             \"path_exact\": {}, \"path_partial\": {}, \"path_full\": {}, \
             \"relookups\": {}, \"relookup_hits\": {}}}{}",
            json_escape(r.mode),
            json_escape(r.op),
            r.workers,
            r.queries,
            r.wall_s,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.mean_ms,
            r.ds_hit_ratio,
            r.exact_hits,
            r.partial_hits,
            r.misses,
            r.path_exact,
            r.path_partial,
            r.path_full,
            r.relookups,
            r.relookup_hits,
            comma
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"contention_results\": [")?;
    let base_qps = contention.first().map_or(0.0, |r| r.qps);
    for (i, r) in contention.iter().enumerate() {
        let comma = if i + 1 < contention.len() { "," } else { "" };
        let speedup = if base_qps > 0.0 {
            r.qps / base_qps
        } else {
            0.0
        };
        writeln!(
            f,
            "    {{\"workers\": {}, \"queries\": {}, \"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.3}, \"ds_hit_ratio\": {:.4}, \
             \"speedup_vs_first\": {:.3}}}{}",
            r.workers, r.queries, r.wall_s, r.qps, r.ds_hit_ratio, speedup, comma
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"graft_contention_results\": [")?;
    for (i, r) in graft_contention.iter().enumerate() {
        let comma = if i + 1 < graft_contention.len() {
            ","
        } else {
            ""
        };
        writeln!(
            f,
            "    {{\"graft\": {}, \"workers\": {}, \"queries\": {}, \"distinct\": {}, \
             \"wall_s\": {:.4}, \"queries_per_sec\": {:.3}, \
             \"path_exact\": {}, \"path_partial\": {}, \"path_full\": {}, \
             \"grafted\": {}, \"duplicate_full_computes\": {}}}{}",
            r.graft,
            r.workers,
            r.queries,
            r.distinct,
            r.wall_s,
            r.qps,
            r.path_exact,
            r.path_partial,
            r.path_full,
            r.grafted,
            r.duplicate_full_computes,
            comma
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"overload_results\": [")?;
    for (i, r) in overload.iter().enumerate() {
        let comma = if i + 1 < overload.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"load_factor\": {}, \"workers\": {}, \"offered\": {}, \
             \"admitted\": {}, \"shed\": {}, \"rejected\": {}, \"degraded\": {}, \
             \"shed_rate\": {:.4}, \"degraded_fraction\": {:.4}, \
             \"wall_s\": {:.4}, \"p95_admitted_response_ms\": {:.3}}}{}",
            r.load_factor,
            r.workers,
            r.offered,
            r.admitted,
            r.shed,
            r.rejected,
            r.degraded,
            r.shed_rate,
            r.degraded_fraction,
            r.wall_s,
            r.p95_admitted_ms,
            comma
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"cache_pressure_results\": [")?;
    for (i, r) in cache_pressure.iter().enumerate() {
        let comma = if i + 1 < cache_pressure.len() {
            ","
        } else {
            ""
        };
        writeln!(
            f,
            "    {{\"policy\": \"{}\", \"tier2_tiles\": {}, \"queries\": {}, \
             \"recomputed_bytes\": {}, \"exact_hits\": {}, \"spilled\": {}, \
             \"restored\": {}, \"reduction_vs_lru_pct\": {:.1}}}{}",
            json_escape(r.policy),
            r.tier2_tiles,
            r.queries,
            r.recomputed_bytes,
            r.exact_hits,
            r.spilled,
            r.restored,
            r.reduction_vs_lru_pct,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let params = parse_args();
    // Shared runners swing run-to-run wall clocks by tens of percent, so
    // each configuration runs `rounds` passes and reports its best — the
    // standard minimum-noise throughput estimator. Rounds are interleaved
    // across configurations (round-robin, not back-to-back) so a slow
    // patch of the machine taxes every configuration equally instead of
    // biasing whichever one it happened to land on.
    let rounds = if params.quick { 1 } else { 3 };
    let mut configs: Vec<(&'static str, VmOp, usize)> = Vec::new();
    for mode in ["interactive", "batch"] {
        for op in [VmOp::Subsample, VmOp::Average] {
            for &w in &params.workers {
                configs.push((mode, op, w));
            }
        }
    }
    let mut best: Vec<Option<RunResult>> = configs.iter().map(|_| None).collect();
    for _ in 0..rounds {
        for (i, &(mode, op, workers)) in configs.iter().enumerate() {
            let r = run_once(mode, op, workers, params.seed, params.quick);
            if best[i].as_ref().is_none_or(|b| r.qps > b.qps) {
                best[i] = Some(r);
            }
        }
    }
    let results: Vec<RunResult> = best.into_iter().flatten().collect();
    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "mode", "op", "workers", "wall_s", "q/s", "p50_ms", "p95_ms", "p99_ms", "hit%"
    );
    for r in &results {
        println!(
            "{:<12} {:>9} {:>8} {:>9.3} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>7.1}%",
            r.mode,
            r.op,
            r.workers,
            r.wall_s,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.ds_hit_ratio * 100.0
        );
    }
    // Contention section: tiny fully cached queries, throughput bounded
    // by scheduler overhead. Swept across worker counts — the scaling
    // curve here is the sharded scheduler's raison d'être. Best-of-rounds
    // like the main sweep, interleaved across worker counts.
    let mut contention_best: Vec<Option<ContentionResult>> =
        params.workers.iter().map(|_| None).collect();
    for _ in 0..rounds {
        for (i, &workers) in params.workers.iter().enumerate() {
            let r = run_contention_once(workers, params.seed, params.quick);
            if contention_best[i].as_ref().is_none_or(|b| r.qps > b.qps) {
                contention_best[i] = Some(r);
            }
        }
    }
    let contention: Vec<ContentionResult> = contention_best.into_iter().flatten().collect();
    println!(
        "{:<12} {:>8} {:>9} {:>10} {:>8}",
        "contention", "workers", "wall_s", "q/s", "hit%"
    );
    for r in &contention {
        println!(
            "{:<12} {:>8} {:>9.3} {:>10.2} {:>7.1}%",
            "cached",
            r.workers,
            r.wall_s,
            r.qps,
            r.ds_hit_ratio * 100.0
        );
    }
    // Graft-contention section: hot windows offered cold with adjacent
    // duplicates, grafting off vs on, sequentially (1 worker) and at the
    // largest swept worker count. The asserts inside
    // run_graft_contention_once pin the ROADMAP item 1 outcome:
    // duplicate full computes at 0 with grafted answers > 0 once copies
    // can actually race (workers > 1).
    let graft_workers = {
        let mut v = vec![1];
        let max = params.workers.iter().copied().max().unwrap_or(1);
        if max > 1 {
            v.push(max);
        }
        v
    };
    let mut graft_contention = Vec::new();
    println!(
        "{:<12} {:>6} {:>8} {:>9} {:>10} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "graft-cont",
        "graft",
        "workers",
        "wall_s",
        "q/s",
        "exact",
        "part",
        "full",
        "grafted",
        "dup"
    );
    for graft in [false, true] {
        for &workers in &graft_workers {
            let r = run_graft_contention_once(graft, workers);
            println!(
                "{:<12} {:>6} {:>8} {:>9.3} {:>10.2} {:>6} {:>6} {:>6} {:>8} {:>6}",
                "cold-dup",
                r.graft,
                r.workers,
                r.wall_s,
                r.qps,
                r.path_exact,
                r.path_partial,
                r.path_full,
                r.grafted,
                r.duplicate_full_computes
            );
            graft_contention.push(r);
        }
    }
    // Overload section: the same batch offered as a burst at 2x and 4x
    // the admission bound, through the degrade/shed ladder. The ladder's
    // outcome mix depends on the bound, not the pool size, so one run per
    // load factor (at the largest swept worker count) covers it.
    let overload_workers = params.workers.iter().copied().max().unwrap_or(1);
    let mut overload = Vec::new();
    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "overload", "factor", "workers", "shed%", "degr%", "rej", "wall_s", "p95_ms"
    );
    for load_factor in [2usize, 4] {
        let r = run_overload_once(load_factor, overload_workers, params.seed, params.quick);
        println!(
            "{:<12} {:>8}x {:>8} {:>8.1}% {:>8.1}% {:>9} {:>9.3} {:>10.2}",
            "burst",
            r.load_factor,
            r.workers,
            r.shed_rate * 100.0,
            r.degraded_fraction * 100.0,
            r.rejected,
            r.wall_s,
            r.p95_admitted_ms
        );
        overload.push(r);
    }
    // Cache-pressure section: the zipfian sweep in virtual time. One
    // run per policy arm — the simulator is deterministic per seed.
    let cache_pressure = run_cache_pressure(params.seed, params.quick);
    println!(
        "{:<14} {:>8} {:>9} {:>15} {:>8} {:>9} {:>10}",
        "cache-pressure", "policy", "tier2", "recomputed (MB)", "spilled", "restored", "vs lru"
    );
    for r in &cache_pressure {
        println!(
            "{:<14} {:>8} {:>8}t {:>15.1} {:>8} {:>9} {:>9.1}%",
            "zipfian",
            r.policy,
            r.tier2_tiles,
            r.recomputed_bytes as f64 / (1 << 20) as f64,
            r.spilled,
            r.restored,
            r.reduction_vs_lru_pct
        );
    }
    write_json(
        &params.out_path,
        &params,
        &results,
        &contention,
        &graft_contention,
        &overload,
        &cache_pressure,
    )
    .expect("write BENCH_e2e.json");
    println!("wrote {}", params.out_path);
}
