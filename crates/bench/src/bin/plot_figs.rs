//! Renders SVG charts from the figure CSVs in `results/` (run the `fig4`…
//! `fig7` binaries first). One chart per figure panel, mirroring the
//! paper's axes.

use std::collections::BTreeMap;
use vmqs_bench::plot::{line_chart, Series};

/// A parsed experiment CSV row (the `ExpRow` columns).
struct Row {
    strategy: String,
    threads: f64,
    ds_mb: f64,
    trimmed_response: f64,
    avg_overlap: f64,
    makespan: f64,
}

fn read_rows(path: &str) -> Option<Vec<Row>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 11 {
            continue;
        }
        rows.push(Row {
            strategy: f[0].to_string(),
            threads: f[2].parse().ok()?,
            ds_mb: f[3].parse().ok()?,
            trimmed_response: f[4].parse().ok()?,
            avg_overlap: f[6].parse().ok()?,
            makespan: f[7].parse().ok()?,
        });
    }
    Some(rows)
}

fn series_by_strategy(
    rows: &[Row],
    x: impl Fn(&Row) -> f64,
    y: impl Fn(&Row) -> f64,
) -> Vec<Series> {
    let mut by: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for r in rows {
        by.entry(r.strategy.clone()).or_default().push((x(r), y(r)));
    }
    by.into_iter()
        .map(|(label, mut points)| {
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            Series { label, points }
        })
        .collect()
}

fn emit(
    path_csv: &str,
    path_svg: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    x: fn(&Row) -> f64,
    y: fn(&Row) -> f64,
) {
    match read_rows(path_csv) {
        Some(rows) if !rows.is_empty() => {
            let svg = line_chart(title, x_label, y_label, &series_by_strategy(&rows, x, y));
            std::fs::write(path_svg, svg).expect("write svg");
            println!("wrote {path_svg}");
        }
        _ => println!("skipping {path_svg}: run the figure binary to produce {path_csv} first"),
    }
}

fn main() {
    for op in ["subsample", "average"] {
        emit(
            &format!("results/fig4_{op}.csv"),
            &format!("results/fig4_{op}.svg"),
            &format!("Fig 4 — response time vs threads ({op})"),
            "query threads",
            "95%-trimmed mean response (s)",
            |r| r.threads,
            |r| r.trimmed_response,
        );
        emit(
            &format!("results/fig5_{op}.csv"),
            &format!("results/fig5_{op}.svg"),
            &format!("Fig 5 — average overlap vs DS memory ({op})"),
            "data store memory (MB)",
            "average overlap",
            |r| r.ds_mb,
            |r| r.avg_overlap,
        );
        emit(
            &format!("results/fig6_{op}.csv"),
            &format!("results/fig6_{op}.svg"),
            &format!("Fig 6 — response time vs DS memory ({op})"),
            "data store memory (MB)",
            "95%-trimmed mean response (s)",
            |r| r.ds_mb,
            |r| r.trimmed_response,
        );
        emit(
            &format!("results/fig7_{op}.csv"),
            &format!("results/fig7_{op}.svg"),
            &format!("Fig 7 — batch execution time vs DS memory ({op})"),
            "data store memory (MB)",
            "total batch time (s)",
            |r| r.ds_mb,
            |r| r.makespan,
        );
    }
}
