//! Figure 5 reproduction: average overlap achieved as the memory allocated
//! to the Data Store Manager is varied (up to 4 concurrent queries).
//!
//! Expected shape (paper §5): overlap increases with DS size for every
//! strategy; for small caches (32 MB) CF and CNBF obtain the highest
//! overlap because they explicitly optimize locality.

use vmqs_bench::{averaged_run, print_table, DS_SWEEP_MB, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    for op in [VmOp::Subsample, VmOp::Average] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for strategy in Strategy::paper_set() {
            for ds_mb in DS_SWEEP_MB {
                let row = averaged_run(strategy, op, 4, ds_mb, PS_MB, SubmissionMode::Interactive);
                csv.push(row.to_csv());
                rows.push(vec![
                    row.strategy.clone(),
                    ds_mb.to_string(),
                    format!("{:.3}", row.avg_overlap),
                    row.exact_hits.to_string(),
                    row.partial_hits.to_string(),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 5{}: average overlap vs DS memory ({} implementation)",
                if op == VmOp::Subsample { "a" } else { "b" },
                op.name()
            ),
            &[
                "strategy",
                "DS (MB)",
                "avg overlap",
                "exact hits",
                "partial hits",
            ],
            &rows,
        );
        let path = format!("results/fig5_{}.csv", op.name());
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
