//! Figure 7 reproduction: total execution time of a single batch of 256
//! queries as the memory allocated to the Data Store Manager is varied
//! (up to 4 concurrent queries).
//!
//! Expected shape (paper §5): CF and CNBF finish the batch fastest,
//! especially when resources are scarce (small DS) — when minimizing total
//! batch time, exploiting reuse matters most.

use vmqs_bench::{averaged_run, print_table, DS_SWEEP_MB, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    for op in [VmOp::Subsample, VmOp::Average] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for strategy in Strategy::paper_set() {
            for ds_mb in DS_SWEEP_MB {
                let row = averaged_run(strategy, op, 4, ds_mb, PS_MB, SubmissionMode::Batch);
                csv.push(row.to_csv());
                rows.push(vec![
                    row.strategy.clone(),
                    ds_mb.to_string(),
                    format!("{:.1}", row.makespan),
                    format!("{:.3}", row.avg_overlap),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 7{}: total batch execution time (256 queries) vs DS memory ({} implementation)",
                if op == VmOp::Subsample { "a" } else { "b" },
                op.name()
            ),
            &["strategy", "DS (MB)", "batch time (s)", "overlap"],
            &rows,
        );
        let path = format!("results/fig7_{}.csv", op.name());
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
