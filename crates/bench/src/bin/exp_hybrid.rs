//! §6 extension: the combined strategy the paper's conclusions propose
//! ("a combination of SJF and the other ranking strategies would provide a
//! viable solution").
//!
//! Compares HYBRID (CNBF locality term minus SJF job-size term, both in
//! bytes) against its two parents across DS sizes, in both interactive and
//! batch modes.

use vmqs_bench::{averaged_run, print_table, DS_SWEEP_MB, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    let strategies = [Strategy::Sjf, Strategy::Cnbf, Strategy::hybrid_default()];
    for mode in [SubmissionMode::Interactive, SubmissionMode::Batch] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for op in [VmOp::Subsample, VmOp::Average] {
            for &strategy in &strategies {
                for ds_mb in DS_SWEEP_MB {
                    let row = averaged_run(strategy, op, 4, ds_mb, PS_MB, mode);
                    csv.push(row.to_csv());
                    rows.push(vec![
                        row.strategy.clone(),
                        op.name().to_string(),
                        ds_mb.to_string(),
                        format!("{:.2}", row.trimmed_response),
                        format!("{:.1}", row.makespan),
                        format!("{:.3}", row.avg_overlap),
                    ]);
                }
            }
        }
        let mode_name = match mode {
            SubmissionMode::Interactive => "interactive",
            SubmissionMode::Batch => "batch",
        };
        print_table(
            &format!("§6 extension: HYBRID vs SJF vs CNBF ({mode_name} mode, 4 threads)"),
            &[
                "strategy",
                "op",
                "DS (MB)",
                "t-mean resp (s)",
                "makespan (s)",
                "overlap",
            ],
            &rows,
        );
        let path = format!("results/exp_hybrid_{mode_name}.csv");
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
