//! Figure 4 reproduction: 95%-trimmed mean query response time as the
//! maximum number of concurrent query threads is varied (1–24), for all
//! six ranking strategies; (a) the subsampling implementation, (b) the
//! pixel-averaging implementation. DS = 64 MB, PS = 32 MB, 16 interactive
//! clients × 16 queries.
//!
//! Expected shape (paper §5): FIFO discernibly worst; MUF/FF/CF/CNBF
//! slightly better than SJF in most cases; response time improves up to an
//! optimal thread count (~4) and then degrades as the I/O subsystem
//! saturates; the averaging version scales better because it is more
//! CPU/I/O balanced.

use vmqs_bench::{averaged_run, print_table, FIG4_THREADS, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    for op in [VmOp::Subsample, VmOp::Average] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for strategy in Strategy::paper_set() {
            for threads in FIG4_THREADS {
                let row = averaged_run(
                    strategy,
                    op,
                    threads,
                    64,
                    PS_MB,
                    SubmissionMode::Interactive,
                );
                csv.push(row.to_csv());
                rows.push(vec![
                    row.strategy.clone(),
                    threads.to_string(),
                    format!("{:.1}", row.trimmed_response),
                    format!("{:.1}", row.mean_response),
                    format!("{:.3}", row.avg_overlap),
                    format!("{:.1}", row.makespan),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 4{}: trimmed-mean response time vs #threads ({} implementation)",
                if op == VmOp::Subsample { "a" } else { "b" },
                op.name()
            ),
            &[
                "strategy",
                "threads",
                "t-mean resp (s)",
                "mean resp (s)",
                "overlap",
                "makespan (s)",
            ],
            &rows,
        );
        let path = format!("results/fig4_{}.csv", op.name());
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
