//! Ablation: blocking on EXECUTING dependencies vs recomputing.
//!
//! The paper's server lets a query stall until an in-flight result it
//! depends on is finished ("this behavior is correct and efficient in the
//! sense that I/O is not duplicated, [but] it wastes CPU resources", §4) —
//! the motivation for the FF and CNBF strategies. This binary compares
//! blocking allowed vs disabled across strategies.

use vmqs_bench::{print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{generate, write_csv, ExpRow, WorkloadConfig};

fn run(strategy: Strategy, op: VmOp, blocking: bool) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate(&WorkloadConfig::paper(op, seed));
            let cfg = vmqs_sim::SimConfig::paper_baseline()
                .with_strategy(strategy)
                .with_threads(8)
                .with_ds_budget(64 << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(SubmissionMode::Interactive)
                .with_blocking(blocking);
            let report = vmqs_sim::run_sim(cfg, streams);
            ExpRow::from_report(&report, strategy, op, 8, 64)
        })
        .collect();
    vmqs_bench::average_rows(&rows)
}

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        for strategy in Strategy::paper_set() {
            let on = run(strategy, op, true);
            let off = run(strategy, op, false);
            csv.push(format!("blocking,{}", on.to_csv()));
            csv.push(format!("no_blocking,{}", off.to_csv()));
            rows.push(vec![
                on.strategy.clone(),
                op.name().to_string(),
                format!("{:.2}", on.trimmed_response),
                format!("{:.2}", off.trimmed_response),
                format!("{:.2}", on.mean_blocked),
                format!("{:.3}", on.avg_overlap),
                format!("{:.3}", off.avg_overlap),
            ]);
        }
    }
    print_table(
        "Ablation: blocking on executing dependencies (8 threads, DS = 64 MB)",
        &[
            "strategy",
            "op",
            "resp blk (s)",
            "resp no-blk (s)",
            "mean blocked (s)",
            "ovl blk",
            "ovl no-blk",
        ],
        &rows,
    );
    write_csv(
        "results/exp_blocking.csv",
        &format!("mode,{}", ExpRow::csv_header()),
        csv,
    )
    .expect("write csv");
    println!("wrote results/exp_blocking.csv");
}
