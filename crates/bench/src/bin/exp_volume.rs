//! §6 extension (2): the 3-D volume visualization application on the same
//! middleware — strategy comparison over MIP (I/O-leaning) and
//! average-projection (balanced) workloads, interactive and batch.
//!
//! The question this answers: do the paper's findings (FIFO worst,
//! locality strategies best for batches, overlap growing with DS) carry
//! over to an application with a *sparser* reuse structure (projections
//! are only reusable across identical depth ranges)?

use vmqs_bench::{average_rows, print_table, PS_MB, SEEDS};
use vmqs_core::Strategy;
use vmqs_sim::{SimConfig, SubmissionMode};
use vmqs_volume::{generate_volume, run_volume_sim, VolCostModel, VolOp, VolWorkloadConfig};
use vmqs_workload::{write_csv, ExpRow};

fn run(strategy: Strategy, op: VolOp, ds_mb: u64, mode: SubmissionMode) -> ExpRow {
    let rows: Vec<ExpRow> = SEEDS
        .iter()
        .map(|&seed| {
            let streams = generate_volume(&VolWorkloadConfig::standard(op, seed));
            let streams = match mode {
                SubmissionMode::Interactive => streams,
                SubmissionMode::Batch => {
                    // Flatten to one batch stream, round-robin.
                    let max = streams.iter().map(|s| s.queries.len()).max().unwrap_or(0);
                    let mut queries = Vec::new();
                    for i in 0..max {
                        for s in &streams {
                            if let Some(q) = s.queries.get(i) {
                                queries.push(*q);
                            }
                        }
                    }
                    vec![vmqs_sim::ClientStream {
                        client: vmqs_core::ClientId(0),
                        queries,
                    }]
                }
            };
            let cfg = SimConfig::paper_baseline()
                .with_strategy(strategy)
                .with_threads(4)
                .with_ds_budget(ds_mb << 20)
                .with_ps_budget(PS_MB << 20)
                .with_mode(mode);
            let report = run_volume_sim(cfg, VolCostModel::calibrated(&cfg.disk), streams);
            let s = report.response_summary();
            ExpRow {
                strategy: strategy.name().to_string(),
                op: op.name().to_string(),
                threads: 4,
                ds_mb,
                trimmed_response: report.trimmed_mean_response(),
                mean_response: s.mean,
                avg_overlap: report.average_overlap(),
                makespan: report.makespan,
                mean_blocked: report.mean_blocked(),
                exact_hits: report.ds_stats.exact_hits,
                partial_hits: report.ds_stats.partial_hits,
            }
        })
        .collect();
    average_rows(&rows)
}

fn main() {
    for (mode, mode_name) in [
        (SubmissionMode::Interactive, "interactive"),
        (SubmissionMode::Batch, "batch"),
    ] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for op in [VolOp::Mip, VolOp::AvgProj] {
            for strategy in Strategy::paper_set() {
                for ds_mb in [1u64, 4, 16] {
                    let row = run(strategy, op, ds_mb, mode);
                    csv.push(row.to_csv());
                    rows.push(vec![
                        row.strategy.clone(),
                        op.name().to_string(),
                        ds_mb.to_string(),
                        format!("{:.2}", row.trimmed_response),
                        format!("{:.1}", row.makespan),
                        format!("{:.3}", row.avg_overlap),
                    ]);
                }
            }
        }
        print_table(
            &format!("§6 extension: 3-D volume application ({mode_name}, 4 threads)"),
            &[
                "strategy",
                "op",
                "DS (MB)",
                "t-mean resp (s)",
                "makespan (s)",
                "overlap",
            ],
            &rows,
        );
        let path = format!("results/exp_volume_{mode_name}.csv");
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
