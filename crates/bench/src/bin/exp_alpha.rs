//! Ablation: the CF strategy's hand-tuned α (weight on dependencies whose
//! results are still being computed; paper §4, strategy 4; the evaluation
//! fixes α = 0.2).
//!
//! Sweeps α from 0 (ignore executing dependencies — pure cached-locality)
//! to 1 (treat executing results as if already cached) under the scarce-DS
//! configuration where CF matters most.

use vmqs_bench::{averaged_run, print_table, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for op in [VmOp::Subsample, VmOp::Average] {
        for alpha10 in [0u32, 2, 4, 6, 8, 10] {
            let alpha = alpha10 as f64 / 10.0;
            let row = averaged_run(
                Strategy::ClosestFirst { alpha },
                op,
                4,
                32,
                PS_MB,
                SubmissionMode::Interactive,
            );
            csv.push(format!("{alpha},{}", row.to_csv()));
            rows.push(vec![
                op.name().to_string(),
                format!("{alpha:.1}"),
                format!("{:.2}", row.trimmed_response),
                format!("{:.3}", row.avg_overlap),
                format!("{:.2}", row.mean_blocked),
                format!("{:.1}", row.makespan),
            ]);
        }
    }
    print_table(
        "Ablation: CF α sweep (DS = 32 MB, 4 threads, interactive)",
        &[
            "op",
            "α",
            "t-mean resp (s)",
            "overlap",
            "mean blocked (s)",
            "makespan (s)",
        ],
        &rows,
    );
    write_csv(
        "results/exp_alpha.csv",
        &format!("alpha,{}", ExpRow::csv_header()),
        csv,
    )
    .expect("write csv");
    println!("wrote results/exp_alpha.csv");
}
