//! Spill-tier experiment (DESIGN.md §14): the cost-based cache hierarchy
//! under zipfian cache pressure, in the memory-constrained regime the
//! tier exists for.
//!
//! Two sections:
//!
//! * **Zipfian sweep** — a skewed popularity workload (a few hot
//!   high-magnification windows repeating against a long cold tail) at a
//!   tier-1 budget far below the working set. At *equal memory*, the
//!   benefit-aware policy with a disk spill tier must recompute at least
//!   25% fewer bytes than recency eviction: hot results are demoted to
//!   tier 2 and re-heated at one disk read instead of being recomputed
//!   from their (page-cache-cold) inputs.
//! * **Flash crowd** — a warm working set flushed out of tier 1 by a
//!   burst of cold queries, then re-requested by the returning crowd.
//!   With the spill tier the crowd re-heats from disk; without it every
//!   return is a full recompute.
//!
//! Usage:
//!   cargo run -p vmqs-bench --release --bin exp_spill
//!   cargo run -p vmqs-bench --release --bin exp_spill -- --quick

use vmqs_bench::print_table;
use vmqs_core::ClientId;
use vmqs_datastore::EvictionPolicy;
use vmqs_sim::{run_sim, ClientStream, SimConfig, SimReport, SubmissionMode};
use vmqs_workload::{zipfian, zipfian_catalog};

/// Output bytes of one zipfian catalog tile (256² RGB).
const TILE_BYTES: u64 = 3 * 256 * 256;

/// One policy arm of the sweep: everything below is virtual-time and
/// fully deterministic per seed.
fn run_arm(
    policy: EvictionPolicy,
    tier2_budget: u64,
    ds_budget: u64,
    streams: Vec<ClientStream>,
) -> SimReport {
    let cfg = SimConfig::paper_baseline()
        .with_threads(4)
        .with_ds_budget(ds_budget)
        // A tight page cache keeps recomputation honest: re-deriving an
        // evicted result must re-scan its inputs from (virtual) disk, not
        // from a warm page cache.
        .with_ps_budget(1 << 20)
        .with_mode(SubmissionMode::Interactive)
        .with_cache_policy(policy)
        .with_tier2_budget(tier2_budget);
    run_sim(cfg, streams)
}

struct Arm {
    label: &'static str,
    policy: EvictionPolicy,
    tier2_budget: u64,
}

fn arms(tier2_budget: u64) -> Vec<Arm> {
    vec![
        Arm {
            label: "lru",
            policy: EvictionPolicy::Lru,
            tier2_budget: 0,
        },
        Arm {
            label: "cost",
            policy: EvictionPolicy::CostBased,
            tier2_budget: 0,
        },
        Arm {
            label: "cost+spill",
            policy: EvictionPolicy::CostBased,
            tier2_budget,
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (catalog, draws) = if quick { (64, 256) } else { (128, 1024) };
    // Tier 1 holds ~8 results of a catalog-sized working set; tier 2
    // holds another 32. Equal tier-1 memory across every arm — the spill
    // arm's extra capacity is disk, which is the point.
    let ds_budget = 8 * TILE_BYTES;
    let tier2_budget = 32 * TILE_BYTES;

    let mut rows = Vec::new();
    let mut reduction_vs_lru = 0.0;
    let mut lru_recomputed = 0u64;
    for seed in [42u64, 43, 44] {
        for arm in arms(tier2_budget) {
            let streams = zipfian(catalog, draws, 1.1, seed);
            let r = run_arm(arm.policy, arm.tier2_budget, ds_budget, streams);
            assert_eq!(r.records.len(), draws, "every draw must complete");
            assert_eq!(r.restore_failures, 0, "no faults configured");
            if arm.label == "lru" {
                lru_recomputed = r.recomputed_bytes;
            } else if arm.label == "cost+spill" {
                assert!(r.spilled > 0, "pressure must spill (seed {seed})");
                assert!(r.restored > 0, "hot tiles must re-heat (seed {seed})");
                reduction_vs_lru +=
                    100.0 * (1.0 - r.recomputed_bytes as f64 / lru_recomputed as f64);
            }
            rows.push(vec![
                seed.to_string(),
                arm.label.to_string(),
                format!("{:.0}", r.makespan),
                format!("{:.1}", r.recomputed_bytes as f64 / (1 << 20) as f64),
                r.ds_stats.exact_hits.to_string(),
                r.spilled.to_string(),
                r.restored.to_string(),
            ]);
        }
    }
    reduction_vs_lru /= 3.0;
    print_table(
        &format!(
            "Zipfian cache pressure ({catalog} tiles, {draws} draws, s=1.1, \
             tier1 = 8 tiles, tier2 = 32 tiles)"
        ),
        &[
            "seed",
            "policy",
            "makespan (s)",
            "recomputed (MB)",
            "exact hits",
            "spilled",
            "restored",
        ],
        &rows,
    );
    println!("\ncost+spill recomputes {reduction_vs_lru:.1}% fewer bytes than lru at equal tier-1 memory");
    assert!(
        reduction_vs_lru >= 25.0,
        "the spill tier must cut recomputed bytes by >= 25%, got {reduction_vs_lru:.1}%"
    );

    // Flash crowd: warm a working set, flush it with a cold burst, then
    // let the crowd return. Identical query sequence with the spill tier
    // on vs off; the only difference is where the returning crowd's
    // answers come from.
    let hot = if quick { 8 } else { 16 };
    let burst = if quick { 32 } else { 64 };
    let tiles = zipfian_catalog(hot + burst);
    // Warm the hot set three times (the repeats raise each hot entry's
    // observed-reuse score, so the burst's one-shot results — not the
    // hot set — are what tier 2 sheds when it overflows), flush with the
    // cold burst, then the crowd returns.
    let mut crowd: Vec<_> = std::iter::repeat_n(&tiles[..hot], 3)
        .flatten()
        .copied()
        .collect();
    crowd.extend_from_slice(&tiles[hot..]);
    crowd.extend_from_slice(&tiles[..hot]);
    let streams = vec![ClientStream {
        client: ClientId(0),
        queries: crowd,
    }];
    let mut flash_rows = Vec::new();
    for (label, tier2) in [("spill off", 0u64), ("spill on", tier2_budget)] {
        let r = run_arm(
            EvictionPolicy::CostBased,
            tier2,
            hot as u64 / 2 * TILE_BYTES,
            streams.clone(),
        );
        if tier2 > 0 {
            assert!(
                r.restored as usize >= hot / 2,
                "the returning crowd must mostly re-heat, restored {}",
                r.restored
            );
        } else {
            assert_eq!(r.restored, 0, "no tier 2, nothing to restore");
        }
        flash_rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.makespan),
            format!("{:.1}", r.recomputed_bytes as f64 / (1 << 20) as f64),
            r.spilled.to_string(),
            r.restored.to_string(),
        ]);
    }
    print_table(
        &format!("Flash crowd ({hot} hot tiles, {burst}-query cold burst, then the crowd returns)"),
        &[
            "tier 2",
            "makespan (s)",
            "recomputed (MB)",
            "spilled",
            "restored",
        ],
        &flash_rows,
    );
}
