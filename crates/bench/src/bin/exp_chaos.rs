//! Chaos experiment (DESIGN.md §15): the failure-containment layer under
//! a seeded fault plan — poison queries, panic-at-nth-compute, and
//! crash-mid-spill — on both engines.
//!
//! Three sections:
//!
//! * **Virtual sweep** — the simulator runs a disjoint-tile batch at
//!   8 workers across several seeds with a poison rate and an ordinal
//!   panic trigger. Every run must conserve queries (`submitted ==
//!   completed + failed + timed_out + shed + rejected`) and replay
//!   bit-identically when repeated with the same seed.
//! * **Threaded sweep** — the real server under the same chaos shape:
//!   conservation from the `ServerSummary`, and every surviving answer
//!   compared byte-for-byte against a chaos-free control run.
//! * **Crash-mid-spill** — a server whose spill write is killed at the
//!   chaos kill-point, then a fresh server over the same directory:
//!   recovery must leave the directory byte-accounted (no torn frames,
//!   no stale temp files).
//!
//! On any violation the run dumps the scheduler event trace to
//! `chaos-fail-trace.json` (override with `--trace-out PATH`) before
//! aborting, so CI can upload it as an artifact.
//!
//! Usage:
//!   cargo run -p vmqs-bench --release --bin exp_chaos
//!   cargo run -p vmqs-bench --release --bin exp_chaos -- --quick

use std::sync::Arc;
use vmqs_bench::print_table;
use vmqs_core::{ClientId, DatasetId, Rect};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};
use vmqs_server::{QueryServer, ServerConfig};
use vmqs_sim::{run_sim, ClientStream, SimConfig, SubmissionMode};
use vmqs_storage::{ChaosConfig, SyntheticSource};

fn tile(i: u32) -> VmQuery {
    let slide = SlideDataset::new(DatasetId(0), 8192, 8192);
    VmQuery::new(
        slide,
        Rect::new((i % 8) * 1024, (i / 8) * 1024, 256, 256),
        1,
        VmOp::Subsample,
    )
}

/// Dumps the event trace and aborts. The JSON lands where CI's
/// chaos-smoke job looks for its failure artifact.
fn fail(trace_out: &str, events: &[vmqs_obs::EventRecord], msg: String) -> ! {
    let _ = std::fs::write(trace_out, vmqs_obs::events_to_json(events));
    eprintln!("chaos invariant violated; event trace -> {trace_out}");
    panic!("{msg}");
}

fn main() {
    // Injected worker panics are the point of this experiment; keep the
    // default hook from interleaving their backtraces with the tables.
    // Real (uninjected) panics still report normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected chaos panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let trace_out = argv
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| argv.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("chaos-fail-trace.json")
        .to_string();
    let seeds: &[u64] = if quick {
        &[42, 43]
    } else {
        &[42, 43, 44, 45, 46]
    };
    let n_queries: u32 = if quick { 24 } else { 48 };

    // ----- virtual sweep -----
    let mut rows = Vec::new();
    for &seed in seeds {
        let chaos = ChaosConfig::none()
            .with_seed(seed)
            .with_poison_rate(0.05)
            .with_panic_at_compute(Some(1));
        let mk = || {
            let streams = vec![ClientStream {
                client: ClientId(0),
                queries: (0..n_queries).map(tile).collect(),
            }];
            run_sim(
                SimConfig::paper_baseline()
                    .with_threads(8)
                    .with_mode(SubmissionMode::Batch)
                    .with_chaos(chaos)
                    .with_quarantine_limit(2)
                    .with_restart_budget(32)
                    .with_observe(true),
                streams,
            )
        };
        let r = mk();
        let accounted = r.records.len() as u64 + r.failed + r.timed_out + r.shed + r.rejected;
        if accounted != n_queries as u64 {
            fail(
                &trace_out,
                &r.events,
                format!(
                    "seed {seed}: conservation broken, {accounted} accounted of {n_queries} submitted"
                ),
            );
        }
        let r2 = mk();
        if r.makespan != r2.makespan || r.quarantined != r2.quarantined {
            fail(
                &trace_out,
                &r2.events,
                format!("seed {seed}: chaos replay diverged"),
            );
        }
        rows.push(vec![
            seed.to_string(),
            r.records.len().to_string(),
            r.failed.to_string(),
            r.quarantined.to_string(),
            r.worker_panics.to_string(),
            r.worker_restarts.to_string(),
            format!("{:.1}", r.makespan),
        ]);
    }
    print_table(
        &format!(
            "Virtual chaos sweep ({n_queries} queries, 8 workers, poison 5%, panic at compute #1)"
        ),
        &[
            "seed",
            "completed",
            "failed",
            "quarantined",
            "panics",
            "restarts",
            "makespan (s)",
        ],
        &rows,
    );

    // ----- threaded sweep -----
    let server_n: u32 = if quick { 12 } else { 24 };
    let server_cfg = || {
        ServerConfig::small()
            .with_threads(4)
            .with_quarantine_limit(2)
            .with_restart_budget(16)
            .with_observability(true)
    };
    // Chaos-free control: the byte-exact reference for every query.
    let control = QueryServer::new(server_cfg(), Arc::new(SyntheticSource::new()));
    let reference: Vec<_> = (0..server_n)
        .map(|i| {
            control
                .submit(tile(i))
                .wait()
                .expect("control run is chaos-free")
        })
        .collect();
    control.shutdown();

    let chaos = ChaosConfig::none()
        .with_seed(seeds[0])
        .with_poison_rate(0.05)
        .with_panic_at_compute(Some(1));
    let server = QueryServer::new(
        server_cfg().with_chaos(chaos),
        Arc::new(SyntheticSource::new()),
    );
    let handles: Vec<_> = (0..server_n).map(|i| server.submit(tile(i))).collect();
    let mut survived = 0u32;
    let mut failed = 0u32;
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(res) => {
                survived += 1;
                if res.image[..] != reference[i].image[..] {
                    let events = server.events();
                    fail(
                        &trace_out,
                        &events,
                        format!("query {i}: survivor answer diverged from control"),
                    );
                }
            }
            Err(_) => failed += 1,
        }
    }
    let sum = server.summary();
    let accounted = sum.completed + sum.failed + sum.timed_out + sum.shed + sum.rejected;
    if accounted != server_n as usize {
        let events = server.events();
        fail(
            &trace_out,
            &events,
            format!("threaded conservation broken, {accounted} accounted of {server_n} submitted"),
        );
    }
    server.shutdown();
    print_table(
        &format!(
            "Threaded chaos sweep ({server_n} queries, 4 workers, poison 5%, panic at compute #1)"
        ),
        &[
            "completed",
            "failed",
            "quarantined",
            "panics",
            "restarts",
            "exact survivors",
        ],
        &[vec![
            sum.completed.to_string(),
            sum.failed.to_string(),
            sum.quarantined.to_string(),
            sum.worker_panics.to_string(),
            sum.worker_restarts.to_string(),
            format!("{survived}/{survived}"),
        ]],
    );
    assert_eq!(survived as usize, sum.completed);
    assert_eq!(failed as usize, sum.failed + sum.timed_out);

    // ----- crash-mid-spill recovery -----
    let dir = std::env::temp_dir().join(format!("vmqs-exp-chaos-{}", std::process::id()));
    let spill_cfg = || {
        ServerConfig::small()
            .with_threads(1)
            .with_cache_policy(vmqs_datastore::EvictionPolicy::CostBased)
            .with_ds_budget(50_000)
            .with_spill_dir(Some(dir.clone()))
            .with_tier2_budget(1 << 20)
    };
    let big = |i: u32| {
        let slide = SlideDataset::new(DatasetId(0), 8192, 8192);
        VmQuery::new(slide, Rect::new(i * 1024, 0, 128, 128), 1, VmOp::Subsample)
    };
    // First server: the second result's demotion hits the chaos
    // kill-point mid-write, leaving a torn temp file behind.
    let crashed = QueryServer::new(
        spill_cfg().with_chaos(ChaosConfig::none().with_crash_spill_write(Some(0))),
        Arc::new(SyntheticSource::new()),
    );
    for i in 0..2 {
        crashed
            .submit(big(i))
            .wait()
            .expect("queries succeed; only the spill write crashes");
    }
    crashed.shutdown();
    let torn = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    // Second server, same directory: recovery sweeps the wreckage.
    let recovered = QueryServer::new(spill_cfg(), Arc::new(SyntheticSource::new()));
    for i in 0..2 {
        let res = recovered
            .submit(big(i))
            .wait()
            .expect("recovered server serves");
        assert_eq!(res.image.len(), 3 * 128 * 128);
    }
    recovered.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("\ncrash-mid-spill: {torn} file(s) left by the crash, directory clean after recovery");
}
