//! Figure 6 reproduction: 95%-trimmed mean query response time as the
//! memory allocated to the Data Store Manager is varied (up to 4
//! concurrent queries, interactive clients).
//!
//! Expected shape (paper §5): response time falls as the DS grows; the
//! higher overlap of CF/CNBF does not always translate into the lowest
//! response times because queries may wait longer in the queue.

use vmqs_bench::{averaged_run, print_table, DS_SWEEP_MB, PS_MB};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::SubmissionMode;
use vmqs_workload::{write_csv, ExpRow};

fn main() {
    for op in [VmOp::Subsample, VmOp::Average] {
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for strategy in Strategy::paper_set() {
            for ds_mb in DS_SWEEP_MB {
                let row = averaged_run(strategy, op, 4, ds_mb, PS_MB, SubmissionMode::Interactive);
                csv.push(row.to_csv());
                rows.push(vec![
                    row.strategy.clone(),
                    ds_mb.to_string(),
                    format!("{:.2}", row.trimmed_response),
                    format!("{:.2}", row.mean_response),
                    format!("{:.3}", row.avg_overlap),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 6{}: trimmed-mean response time vs DS memory ({} implementation)",
                if op == VmOp::Subsample { "a" } else { "b" },
                op.name()
            ),
            &[
                "strategy",
                "DS (MB)",
                "t-mean resp (s)",
                "mean resp (s)",
                "overlap",
            ],
            &rows,
        );
        let path = format!("results/fig6_{}.csv", op.name());
        write_csv(&path, ExpRow::csv_header(), csv).expect("write csv");
        println!("wrote {path}");
    }
}
