//! Minimal SVG line charts for the figure reproductions — no external
//! dependencies, just enough to eyeball the curves next to the paper's.

/// One line in a chart.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates, in x order.
    pub points: Vec<(f64, f64)>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 130.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;
const COLORS: [&str; 7] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf",
];

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders an SVG line chart. The y axis starts at zero; both axes are
/// linear with five ticks. Panics when no series has at least one point.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!pts.is_empty(), "cannot chart zero points");
    let x_min = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_max = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max) * 1.05;
    let (x_min, x_max) = if x_min == x_max {
        (x_min - 1.0, x_max + 1.0)
    } else {
        (x_min, x_max)
    };
    let y_max = if y_max <= 0.0 { 1.0 } else { y_max };

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + plot_h - (y / y_max) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {WIDTH} {HEIGHT}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        title
    ));

    // Grid + ticks.
    for i in 0..=4 {
        let f = i as f64 / 4.0;
        let gx = MARGIN_L + f * plot_w;
        let gy = MARGIN_T + plot_h - f * plot_h;
        svg.push_str(&format!(
            "<line x1=\"{gx}\" y1=\"{MARGIN_T}\" x2=\"{gx}\" y2=\"{}\" stroke=\"#ddd\"/>\n",
            MARGIN_T + plot_h
        ));
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{gy}\" x2=\"{}\" y2=\"{gy}\" stroke=\"#ddd\"/>\n",
            MARGIN_L + plot_w
        ));
        svg.push_str(&format!(
            "<text x=\"{gx}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            MARGIN_T + plot_h + 18.0,
            fmt_tick(x_min + f * (x_max - x_min))
        ));
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 8.0,
            gy + 4.0,
            fmt_tick(f * y_max)
        ));
    }
    // Axes.
    svg.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w}\" height=\"{plot_h}\" \
         fill=\"none\" stroke=\"#333\"/>\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 10.0,
        x_label
    ));
    svg.push_str(&format!(
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {})\">{}</text>\n",
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        y_label
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            path.join(" ")
        ));
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>\n",
                sx(x),
                sy(y)
            ));
        }
        // Legend.
        let ly = MARGIN_T + 16.0 * i as f64;
        let lx = MARGIN_L + plot_w + 10.0;
        svg.push_str(&format!(
            "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            lx + 18.0
        ));
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">{}</text>\n",
            lx + 24.0,
            ly + 4.0,
            s.label
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "A".into(),
                points: vec![(1.0, 2.0), (2.0, 4.0), (4.0, 3.0)],
            },
            Series {
                label: "B".into(),
                points: vec![(1.0, 1.0), (2.0, 1.5), (4.0, 5.0)],
            },
        ]
    }

    #[test]
    fn chart_contains_series_and_labels() {
        let svg = line_chart("Title", "threads", "seconds", &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">Title<"));
        assert!(svg.contains(">threads<"));
        assert!(svg.contains(">seconds<"));
        assert!(svg.contains(">A<") && svg.contains(">B<"));
    }

    #[test]
    fn higher_y_maps_to_smaller_svg_y() {
        let svg = line_chart("t", "x", "y", &demo_series());
        // Series A's point (2,4) must sit above (smaller cy) its point (1,2).
        let circles: Vec<&str> = svg.lines().filter(|l| l.starts_with("<circle")).collect();
        let cy = |line: &str| -> f64 {
            let i = line.find("cy=\"").unwrap() + 4;
            let rest = &line[i..];
            rest[..rest.find('"').unwrap()].parse().unwrap()
        };
        assert!(cy(circles[1]) < cy(circles[0]));
    }

    #[test]
    fn single_x_value_does_not_divide_by_zero() {
        let s = vec![Series {
            label: "solo".into(),
            points: vec![(3.0, 1.0)],
        }];
        let svg = line_chart("t", "x", "y", &s);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_chart_panics() {
        line_chart("t", "x", "y", &[]);
    }
}
