//! Criterion micro-benchmarks for the Data Store Manager: semantic lookup
//! cost as the store grows, and allocation/eviction churn.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmqs_core::QueryId;
use vmqs_core::{DatasetId, Rect};
use vmqs_datastore::{DataStore, Payload};
use vmqs_microscope::{SlideDataset, VmOp, VmQuery};

fn filled_store(n: u64) -> DataStore<VmQuery> {
    let slide = SlideDataset::paper_scale(DatasetId(0));
    let mut ds = DataStore::new(u64::MAX);
    let mut ev = Vec::new();
    for i in 0..n {
        // Pseudo-random scatter across the slide so candidate counts stay
        // realistic as n grows.
        let x = ((i * 997) % 27000) as u32;
        let y = ((i * 641) % 27000) as u32;
        let spec = VmQuery::new(slide, Rect::new(x, y, 2048, 2048), 2, VmOp::Subsample);
        ds.insert(
            QueryId(i),
            spec,
            spec_outsize(&spec),
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
    }
    ds
}

fn spec_outsize(q: &VmQuery) -> u64 {
    use vmqs_core::QuerySpec;
    q.qoutsize()
}

fn bench_lookup(c: &mut Criterion) {
    let slide = SlideDataset::paper_scale(DatasetId(0));
    let probe = VmQuery::new(slide, Rect::new(512, 512, 4096, 4096), 4, VmOp::Subsample);
    let mut group = c.benchmark_group("ds_lookup");
    for &n in &[16u64, 64, 256] {
        let ds = filled_store(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ds.lookup(&probe).len()));
        });
    }
    group.finish();
}

fn bench_insert_with_eviction(c: &mut Criterion) {
    let slide = SlideDataset::paper_scale(DatasetId(0));
    c.bench_function("ds_insert_evicting", |b| {
        // Budget fits ~8 blobs of 3 MB; steady-state inserts always evict.
        let mut ds: DataStore<VmQuery> = DataStore::new(24 << 20);
        let mut ev = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            let x = (i % 26) as u32 * 1024;
            let spec = VmQuery::new(slide, Rect::new(x, 0, 1024, 1024), 1, VmOp::Subsample);
            ds.insert(QueryId(i), spec, 3 << 20, Payload::Virtual, &mut ev)
                .unwrap();
            i += 1;
            ev.clear();
            black_box(ds.used())
        });
    });
}

fn bench_indexed_vs_linear_lookup(c: &mut Criterion) {
    use vmqs_datastore::SpatialDataStore;
    let slide = SlideDataset::paper_scale(DatasetId(0));
    let probe = VmQuery::new(slide, Rect::new(512, 512, 4096, 4096), 4, VmOp::Subsample);
    let mut group = c.benchmark_group("ds_lookup_indexed_vs_linear");
    for &n in &[256u64, 4096] {
        let linear = filled_store(n);
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| black_box(linear.lookup(&probe).len()));
        });
        // Same pseudo-random population as the linear store.
        let mut indexed: SpatialDataStore<VmQuery> = SpatialDataStore::new(u64::MAX, 2048);
        let mut ev = Vec::new();
        for i in 0..n {
            let x = ((i * 997) % 27000) as u32;
            let y = ((i * 641) % 27000) as u32;
            let spec = VmQuery::new(slide, Rect::new(x, y, 2048, 2048), 2, VmOp::Subsample);
            indexed
                .insert(
                    QueryId(i),
                    spec,
                    spec_outsize(&spec),
                    vmqs_datastore::Payload::Virtual,
                    &mut ev,
                )
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(indexed.lookup(&probe).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup,
    bench_insert_with_eviction,
    bench_indexed_vs_linear_lookup
);
criterion_main!(benches);
