//! Criterion micro-benchmarks for the Virtual Microscope processing
//! kernels: per-chunk subsampling and averaging throughput, and the
//! `project` transformation (which must be far cheaper than
//! recomputation for reuse to pay off).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vmqs_core::{DatasetId, Rect};
use vmqs_microscope::kernels::{compute_from_chunks, project, subsample_chunk, AvgAccumulator};
use vmqs_microscope::{RgbImage, SlideDataset, VmOp, VmQuery, PAGE_SIZE};
use vmqs_storage::{DataSource, SyntheticSource};

fn slide() -> SlideDataset {
    SlideDataset::new(DatasetId(0), 4096, 4096)
}

fn page(idx: u64) -> Vec<u8> {
    SyntheticSource::new()
        .read_page(DatasetId(0), idx, PAGE_SIZE)
        .unwrap()
}

fn bench_subsample_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsample_chunk");
    for &zoom in &[1u32, 4, 16] {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), zoom, VmOp::Subsample);
        let rect = q.slide.chunk_rect(0);
        let data = page(0);
        group.bench_with_input(BenchmarkId::from_parameter(zoom), &zoom, |b, _| {
            let (w, h) = q.output_dims();
            let mut out = RgbImage::new(w, h);
            b.iter(|| {
                subsample_chunk(&mut out, &q, rect, &data);
                black_box(out.data[0])
            });
        });
    }
    group.finish();
}

fn bench_average_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("average_chunk");
    for &zoom in &[2u32, 8] {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), zoom, VmOp::Average);
        let rect = q.slide.chunk_rect(0);
        let data = page(0);
        group.bench_with_input(BenchmarkId::from_parameter(zoom), &zoom, |b, _| {
            b.iter(|| {
                let mut acc = AvgAccumulator::new(&q);
                acc.accumulate_chunk(&q, rect, &data);
                black_box(acc.finalize().data[0])
            });
        });
    }
    group.finish();
}

fn bench_full_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_from_chunks_512px_window");
    group.sample_size(20);
    for op in [VmOp::Subsample, VmOp::Average] {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 512, 512), 2, op);
        group.bench_function(op.name(), |b| {
            let src = SyntheticSource::new();
            b.iter(|| {
                let img = compute_from_chunks(&q, |idx| {
                    Arc::new(src.read_page(DatasetId(0), idx, PAGE_SIZE).unwrap())
                });
                black_box(img.data.len())
            });
        });
    }
    group.finish();
}

fn bench_project_vs_recompute(c: &mut Criterion) {
    // The reuse payoff in microcosm: projecting a cached zoom-2 result to
    // zoom-8 vs recomputing zoom-8 from raw chunks.
    let cached_q = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), 2, VmOp::Subsample);
    let src = SyntheticSource::new();
    let cached_img = compute_from_chunks(&cached_q, |idx| {
        Arc::new(src.read_page(DatasetId(0), idx, PAGE_SIZE).unwrap())
    });
    let target = VmQuery::new(slide(), Rect::new(0, 0, 1024, 1024), 8, VmOp::Subsample);

    let mut group = c.benchmark_group("reuse_payoff_zoom8_from_zoom2");
    group.bench_function("project_from_cache", |b| {
        let (w, h) = target.output_dims();
        let mut out = RgbImage::new(w, h);
        b.iter(|| {
            black_box(project(&mut out, &target, &cached_q, cached_img.view()));
        });
    });
    group
        .sample_size(20)
        .bench_function("recompute_from_chunks", |b| {
            b.iter(|| {
                let img = compute_from_chunks(&target, |idx| {
                    Arc::new(src.read_page(DatasetId(0), idx, PAGE_SIZE).unwrap())
                });
                black_box(img.data.len())
            });
        });
    group.finish();
}

criterion_group!(
    benches,
    bench_subsample_chunk,
    bench_average_chunk,
    bench_full_query,
    bench_project_vs_recompute
);
criterion_main!(benches);
