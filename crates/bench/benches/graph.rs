//! Criterion micro-benchmarks for the scheduling graph: insertion,
//! dequeue, state-transition re-ranking, and the incremental-vs-full
//! re-ranking ablation called out in DESIGN.md §5.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmqs_core::spec::testutil::IntervalSpec;
use vmqs_core::{QueryId, SchedulingGraph, Strategy};

/// A synthetic population with heavy overlap: queries land on 16 hotspots
/// with varying scales, so the graph is dense enough to stress re-ranking.
fn populate(g: &mut SchedulingGraph<IntervalSpec>, n: u64) {
    for i in 0..n {
        let start = (i % 16) * 50;
        let scale = 1 << (i % 3);
        g.insert(QueryId(i), IntervalSpec::new(start, 200, scale));
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_insert");
    for &n in &[64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut g = SchedulingGraph::new(Strategy::Cnbf);
                populate(&mut g, n);
                black_box(g.len())
            });
        });
    }
    group.finish();
}

fn bench_dequeue_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_dequeue_mark_cached");
    for strategy in [Strategy::Fifo, Strategy::Muf, Strategy::Cnbf, Strategy::Sjf] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let mut g = SchedulingGraph::new(strategy);
                populate(&mut g, 256);
                while let Some(id) = g.dequeue() {
                    g.mark_cached(id);
                }
                black_box(g.stats().dequeued)
            });
        });
    }
    group.finish();
}

fn bench_incremental_vs_full_rerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("rerank");
    // Incremental: ranks are maintained by each transition (the paper's
    // approach: "updates … are done in an incremental fashion to avoid
    // performance degradation").
    group.bench_function("incremental_per_transition", |b| {
        let mut g = SchedulingGraph::new(Strategy::Cnbf);
        populate(&mut g, 512);
        let ids: Vec<QueryId> = (0..512).map(QueryId).collect();
        let mut i = 0;
        // Cycle: dequeue + cache one query per iteration (graph state keeps
        // evolving, which is what re-ranking reacts to).
        b.iter(|| {
            if g.waiting_len() == 0 {
                g = SchedulingGraph::new(Strategy::Cnbf);
                populate(&mut g, 512);
            }
            let id = g.dequeue().unwrap();
            g.mark_cached(id);
            i += 1;
            black_box(&ids[i % ids.len()]);
        });
    });
    // Full: recompute every rank from scratch after each transition.
    group.bench_function("full_recompute_per_transition", |b| {
        let mut g = SchedulingGraph::new(Strategy::Cnbf);
        populate(&mut g, 512);
        b.iter(|| {
            if g.waiting_len() == 0 {
                g = SchedulingGraph::new(Strategy::Cnbf);
                populate(&mut g, 512);
            }
            let id = g.dequeue().unwrap();
            g.mark_cached(id);
            g.recompute_all_ranks();
            black_box(g.len());
        });
    });
    group.finish();
}

fn bench_swap_out(c: &mut Criterion) {
    c.bench_function("graph_swap_out_dense_node", |b| {
        b.iter_batched(
            || {
                let mut g = SchedulingGraph::new(Strategy::Cnbf);
                populate(&mut g, 256);
                let id = g.dequeue().unwrap();
                g.mark_cached(id);
                (g, id)
            },
            |(mut g, id)| {
                g.swap_out(id);
                black_box(g.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_dequeue_cycle,
    bench_incremental_vs_full_rerank,
    bench_swap_out
);
criterion_main!(benches);
