//! Criterion micro-benchmarks for the Page Space Manager: request-plan
//! cost with and without run merging, and raw run-merging throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmqs_core::DatasetId;
use vmqs_pagespace::{merge_into_runs, PageCacheCore, PageKey};

fn scattered_pages(n: u64) -> Vec<PageKey> {
    // Mixture of contiguous spans and strided singletons, as produced by a
    // 2-D query window over a row-major chunk grid.
    (0..n)
        .map(|i| PageKey::new(DatasetId(0), (i / 8) * 205 + (i % 8)))
        .collect()
}

fn bench_merge_into_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_into_runs");
    for &n in &[64u64, 1024, 16384] {
        let pages = scattered_pages(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pages, |b, pages| {
            b.iter(|| black_box(merge_into_runs(pages).len()));
        });
    }
    group.finish();
}

fn bench_plan_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_plan_read");
    for (name, merging) in [("merged", true), ("unmerged", false)] {
        group.bench_function(name, |b| {
            let mut ps = PageCacheCore::new(512 << 20, 65536);
            ps.set_merging(merging);
            let pages = scattered_pages(1024);
            b.iter(|| {
                let plan = ps.plan_read(&pages);
                // Complete the fetches so the next iteration sees hits and
                // the cache stays in steady state.
                for run in &plan.fetch_runs {
                    for p in run.pages() {
                        ps.complete_fetch(p, vmqs_pagespace::PageData::Virtual);
                    }
                }
                black_box(plan.fetch_runs.len())
            });
        });
    }
    group.finish();
}

fn bench_hit_path(c: &mut Criterion) {
    c.bench_function("ps_get_resident", |b| {
        let mut ps = PageCacheCore::new(64 << 20, 65536);
        let page = PageKey::new(DatasetId(0), 7);
        ps.plan_read(&[page]);
        ps.complete_fetch(page, vmqs_pagespace::PageData::Virtual);
        b.iter(|| black_box(ps.get(page).is_some()));
    });
}

criterion_group!(
    benches,
    bench_merge_into_runs,
    bench_plan_read,
    bench_hit_path
);
criterion_main!(benches);
