//! Criterion benchmarks for the §6 volume application: projection kernel
//! throughput, LOD projection vs recomputation, and full simulated runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vmqs_core::{DatasetId, Rect, Strategy};
use vmqs_sim::SimConfig;
use vmqs_storage::{DataSource, SyntheticSource};
use vmqs_volume::kernels::{compute_from_bricks, project, reference_render};
use vmqs_volume::{
    generate_volume, run_volume_sim, GrayImage, VolCostModel, VolOp, VolQuery, VolWorkloadConfig,
    VolumeDataset, PAGE_SIZE,
};

fn vol() -> VolumeDataset {
    VolumeDataset::new(DatasetId(0), 512, 512, 256)
}

fn fetcher() -> impl FnMut(u64) -> Arc<Vec<u8>> {
    let src = SyntheticSource::new();
    move |idx| Arc::new(src.read_page(DatasetId(0), idx, PAGE_SIZE).unwrap())
}

fn bench_projection_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume_projection_128px");
    group.sample_size(20);
    for op in [VolOp::Mip, VolOp::AvgProj] {
        let q = VolQuery::new(vol(), Rect::new(0, 0, 128, 128), 0, 128, 1, op);
        group.bench_with_input(BenchmarkId::from_parameter(op.name()), &q, |b, q| {
            let mut fetch = fetcher();
            b.iter(|| black_box(compute_from_bricks(q, &mut fetch).data[0]));
        });
    }
    group.finish();
}

fn bench_lod_project_vs_recompute(c: &mut Criterion) {
    let cached = VolQuery::new(vol(), Rect::new(0, 0, 256, 256), 0, 128, 1, VolOp::Mip);
    let cached_img = compute_from_bricks(&cached, fetcher());
    let target = VolQuery::new(vol(), Rect::new(0, 0, 256, 256), 0, 128, 4, VolOp::Mip);

    let mut group = c.benchmark_group("volume_reuse_payoff_lod4_from_lod1");
    group.bench_function("project_from_cache", |b| {
        let (w, h) = target.output_dims();
        let mut out = GrayImage::new(w, h);
        b.iter(|| black_box(project(&mut out, &target, &cached, &cached_img)));
    });
    group
        .sample_size(10)
        .bench_function("recompute_from_bricks", |b| {
            let mut fetch = fetcher();
            b.iter(|| black_box(compute_from_bricks(&target, &mut fetch).data[0]));
        });
    group.finish();
}

fn bench_reference_renderer(c: &mut Criterion) {
    let q = VolQuery::new(vol(), Rect::new(0, 0, 64, 64), 0, 64, 2, VolOp::AvgProj);
    c.bench_function("volume_reference_render_32px", |b| {
        b.iter(|| black_box(reference_render(&q).data[0]));
    });
}

fn bench_volume_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume_sim_24_queries");
    group.sample_size(20);
    for strategy in [Strategy::Fifo, Strategy::Cnbf] {
        group.bench_function(strategy.name(), |b| {
            let mut wcfg = VolWorkloadConfig::standard(VolOp::Mip, 42);
            wcfg.queries_per_client = 3;
            let streams = generate_volume(&wcfg);
            let cfg = SimConfig::paper_baseline().with_strategy(strategy);
            let cost = VolCostModel::calibrated(&cfg.disk);
            b.iter(|| black_box(run_volume_sim(cfg, cost, streams.clone()).makespan));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_projection_kernels,
    bench_lod_project_vs_recompute,
    bench_reference_renderer,
    bench_volume_sim
);
criterion_main!(benches);
