//! Criterion benchmarks of the discrete-event simulator itself (events
//! per second at paper scale) plus reduced-scale runs of every figure
//! pipeline, so `cargo bench` exercises the full reproduction path
//! end-to-end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vmqs_core::Strategy;
use vmqs_microscope::VmOp;
use vmqs_sim::{run_sim, SimConfig, SubmissionMode};
use vmqs_workload::{flatten_to_batch, generate, WorkloadConfig};

fn reduced_workload(op: VmOp, seed: u64) -> Vec<vmqs_sim::ClientStream> {
    let mut cfg = WorkloadConfig::paper(op, seed);
    cfg.queries_per_client = 4; // 64 queries instead of 256
    generate(&cfg)
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_full_run_64_queries");
    group.sample_size(20);
    for strategy in [Strategy::Fifo, Strategy::Cnbf, Strategy::Sjf] {
        group.bench_function(strategy.name(), |b| {
            let streams = reduced_workload(VmOp::Subsample, 42);
            let cfg = SimConfig::paper_baseline().with_strategy(strategy);
            b.iter(|| {
                let report = run_sim(cfg, streams.clone());
                black_box(report.records.len())
            });
        });
    }
    group.finish();
}

fn bench_fig_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines_reduced");
    group.sample_size(10);
    // Fig 4 point: thread sweep member.
    group.bench_function("fig4_point_8_threads", |b| {
        let streams = reduced_workload(VmOp::Subsample, 42);
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::Cnbf)
            .with_threads(8);
        b.iter(|| black_box(run_sim(cfg, streams.clone()).trimmed_mean_response()));
    });
    // Fig 5/6 point: DS sweep member.
    group.bench_function("fig5_point_32mb", |b| {
        let streams = reduced_workload(VmOp::Average, 42);
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::closest_first_default())
            .with_ds_budget(32 << 20);
        b.iter(|| black_box(run_sim(cfg, streams.clone()).average_overlap()));
    });
    // Fig 7 point: batch mode.
    group.bench_function("fig7_point_batch", |b| {
        let streams = flatten_to_batch(&reduced_workload(VmOp::Subsample, 42));
        let cfg = SimConfig::paper_baseline()
            .with_strategy(Strategy::Cnbf)
            .with_mode(SubmissionMode::Batch);
        b.iter(|| black_box(run_sim(cfg, streams.clone()).makespan));
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload_generate_paper_256", |b| {
        let cfg = WorkloadConfig::paper(VmOp::Subsample, 42);
        b.iter(|| black_box(generate(&cfg).len()));
    });
}

criterion_group!(
    benches,
    bench_sim_throughput,
    bench_fig_pipelines,
    bench_workload_generation
);
criterion_main!(benches);
