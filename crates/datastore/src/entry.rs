//! Blob entries held by the Data Store Manager.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vmqs_core::{BlobId, QueryId};

/// The stored contents of a blob.
///
/// The real execution engine stores actual result bytes; the discrete-event
/// simulator only needs size accounting, so it stores [`Payload::Virtual`]
/// and the Data Store behaves identically in both cases.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Actual result bytes (shared so readers can keep projecting from a
    /// blob even after it is evicted from the store, and so handing a copy
    /// to a caller is a refcount bump, not a byte copy).
    Bytes(Arc<[u8]>),
    /// Size-only accounting for simulation.
    Virtual,
}

impl Payload {
    /// Byte length when actual data is present.
    pub fn len(&self) -> Option<usize> {
        match self {
            Payload::Bytes(b) => Some(b.len()),
            Payload::Virtual => None,
        }
    }

    /// True when actual data is present and empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// One intermediate result registered in the Data Store, together with its
/// semantic metadata (the producing query's predicate).
#[derive(Debug)]
pub struct BlobEntry<S> {
    /// The blob's identity.
    pub id: BlobId,
    /// The query whose execution produced (or is producing) this blob. Used
    /// to propagate evictions back to the scheduling graph as SWAPPED_OUT
    /// transitions.
    pub producer: QueryId,
    /// Predicate meta-information describing the result.
    pub spec: S,
    /// Size charged against the store budget, in bytes.
    pub size: u64,
    /// Result contents (or virtual for simulation).
    pub payload: Payload,
    /// False while the producing query is still executing (a `malloc`ed but
    /// uncommitted buffer): invisible to lookups and protected from
    /// eviction.
    pub ready: bool,
    /// LRU stamp; atomic so lookups can touch entries through `&self`
    /// (concurrent readers under the store's read lock).
    pub(crate) last_access: AtomicU64,
}

impl<S: Clone> Clone for BlobEntry<S> {
    fn clone(&self) -> Self {
        BlobEntry {
            id: self.id,
            producer: self.producer,
            spec: self.spec.clone(),
            size: self.size,
            payload: self.payload.clone(),
            ready: self.ready,
            last_access: AtomicU64::new(self.last_access.load(Ordering::Relaxed)),
        }
    }
}

impl<S> BlobEntry<S> {
    /// True when the entry may be returned by lookups.
    pub fn visible(&self) -> bool {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_len() {
        let p = Payload::Bytes(vec![1, 2, 3].into());
        assert_eq!(p.len(), Some(3));
        assert!(!p.is_empty());
        assert_eq!(Payload::Virtual.len(), None);
        assert!(!Payload::Virtual.is_empty());
        assert!(Payload::Bytes(Vec::new().into()).is_empty());
    }
}
