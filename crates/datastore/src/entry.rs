//! Blob entries held by the Data Store Manager.

use std::sync::Arc;
use vmqs_core::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use vmqs_core::{BlobId, QueryId};

/// The stored contents of a blob.
///
/// The real execution engine stores actual result bytes; the discrete-event
/// simulator only needs size accounting, so it stores [`Payload::Virtual`]
/// and the Data Store behaves identically in both cases.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Actual result bytes (shared so readers can keep projecting from a
    /// blob even after it is evicted from the store, and so handing a copy
    /// to a caller is a refcount bump, not a byte copy).
    Bytes(Arc<[u8]>),
    /// Size-only accounting for simulation.
    Virtual,
}

impl Payload {
    /// Byte length when actual data is present.
    pub fn len(&self) -> Option<usize> {
        match self {
            Payload::Bytes(b) => Some(b.len()),
            Payload::Virtual => None,
        }
    }

    /// True when actual data is present and empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// Lifecycle phase of a blob entry (paper §2's accumulator meta-data
/// object states).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// `malloc`ed, producer still writing: invisible to lookups and
    /// protected from eviction.
    Accumulating = 0,
    /// Committed: visible to lookups, eligible for eviction.
    Full = 1,
    /// Evicted: the entry must never be read again.
    SwappedOut = 2,
    /// In-flight with grafting enabled (DESIGN.md §13): like ACCUMULATING
    /// (invisible to lookups, protected from eviction) but *discoverable*
    /// by overlapping queries, which may attach a [`GraftSubscription`]
    /// and consume the result the moment it is published instead of
    /// recomputing it.
    Subscribable = 3,
    /// Spilled to the tier-2 store (DESIGN.md §14): the in-memory payload
    /// is gone, but a compact on-disk copy exists, so a later exact-match
    /// lookup can re-heat the entry at disk cost instead of recompute
    /// cost. Invisible to normal lookups and unpinnable until
    /// [`EntryState::restore`] brings it back to FULL.
    Restorable = 4,
}

/// Number of independent pin-counter stripes per entry. A reader pins
/// the stripe of its choosing (workers use their own index), so
/// concurrent readers of one hot cached entry RMW *different* cache
/// lines instead of serializing on a single counter. Power of two so
/// stripe selection is a mask.
pub const PIN_STRIPES: usize = 8;

/// Atomic state machine guarding a blob entry's lifecycle
/// (ACCUMULATING → FULL → SWAPPED_OUT) plus a striped reader pin count.
///
/// The orderings are load-bearing and checked by the loom models in
/// `tests/loom.rs`:
///
/// * [`EntryState::publish`] stores FULL with `Release` so the
///   producer's payload writes happen-before any reader that observes
///   visibility via an `Acquire` load (model `ds_entry_publish`).
/// * [`EntryState::pin_at`] / [`EntryState::try_swap_out`] run the
///   store-buffering protocol — reader: *increment own pin stripe, then
///   check state*; evictor: *mark SWAPPED_OUT, then check every
///   stripe* — with `SeqCst` on both cross-checks. Weakening either
///   check to `Relaxed` lets both sides see stale values, and a pinned
///   entry gets freed under a reader (models
///   `ds_entry_no_read_after_swapout` and
///   `ds_entry_striped_pins_block_swapout`). Striping does not weaken
///   the protocol: each stripe individually participates in the same
///   SeqCst store-buffering pattern against the evictor's phase CAS,
///   and the evictor refuses unless *all* stripes read zero.
/// * [`EntryState::subscribe`] / [`EntryState::publish`] run the same
///   store-buffering protocol for the graft handshake — subscriber:
///   *increment subscriber count, then check phase*; producer: *publish,
///   then check subscriber count* — with `SeqCst` on all four accesses.
///   This rules out the lost wakeup where the subscriber decides to wait
///   (saw SUBSCRIBABLE) while the producer decides nobody is listening
///   (saw zero subscribers): at least one side must observe the other
///   (model `ds_entry_graft_no_lost_wakeup`). A nonzero subscriber count
///   also blocks [`EntryState::try_swap_out`], so a published entry
///   cannot be freed between the producer's publish and the subscriber's
///   read (model `ds_entry_graft_no_read_after_swapout`).
/// * [`EntryState::try_spill`] / [`EntryState::restore`] extend the same
///   discipline to the tier-2 spill store (DESIGN.md §14): a spill is a
///   pin-checked demotion FULL → RESTORABLE (identical store-buffering
///   cross-check as `try_swap_out`, so pins and subscriptions block it —
///   model `ds_entry_pin_blocks_spill`), a restore is a CAS promotion
///   RESTORABLE → FULL that publishes the re-read payload with
///   Release-or-stronger ordering and admits exactly one winner among
///   concurrent restorers (models
///   `ds_entry_no_read_after_spill_without_restore` and
///   `ds_entry_restore_publishes_exactly_once`).
#[derive(Debug)]
pub struct EntryState {
    phase: AtomicU8,
    /// Readers currently projecting from the entry's payload, striped to
    /// keep concurrent pinners off each other's cache lines.
    pins: [AtomicU32; PIN_STRIPES],
    /// Grafting consumers attached to this entry (subscribed between
    /// SUBSCRIBABLE and their post-publish read). Blocks swap-out.
    subs: AtomicU32,
}

impl EntryState {
    /// Creates the state machine in ACCUMULATING.
    pub fn new() -> Self {
        EntryState {
            phase: AtomicU8::new(Phase::Accumulating as u8),
            pins: std::array::from_fn(|_| AtomicU32::new(0)),
            subs: AtomicU32::new(0),
        }
    }

    fn decode(v: u8) -> Phase {
        match v {
            0 => Phase::Accumulating,
            1 => Phase::Full,
            3 => Phase::Subscribable,
            4 => Phase::Restorable,
            _ => Phase::SwappedOut,
        }
    }

    /// Current phase (Acquire: pairs with the Release in `publish`, so a
    /// caller that observes FULL also observes the committed payload).
    pub fn phase(&self) -> Phase {
        Self::decode(self.phase.load(Ordering::Acquire))
    }

    /// ACCUMULATING → FULL or SUBSCRIBABLE → FULL. Returns false when the
    /// entry was in neither in-flight phase (double commit or already
    /// evicted). SeqCst (⊇ Release): the producer's payload writes become
    /// visible with the transition, and the publish is totally ordered
    /// against concurrent [`EntryState::subscribe`] increments so a
    /// producer checking [`EntryState::subscribers`] afterwards cannot
    /// miss a subscriber that decided to wait (store-buffering pairing
    /// described on the type).
    pub fn publish(&self) -> bool {
        for from in [Phase::Accumulating, Phase::Subscribable] {
            if self
                .phase
                .compare_exchange(
                    from as u8,
                    Phase::Full as u8,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// ACCUMULATING → SUBSCRIBABLE: opens the in-flight entry to graft
    /// subscriptions. Returns false when the entry already left
    /// ACCUMULATING.
    pub fn make_subscribable(&self) -> bool {
        self.phase
            .compare_exchange(
                Phase::Accumulating as u8,
                Phase::Subscribable as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Attaches a graft subscription: increments the subscriber count,
    /// then reads the phase (both SeqCst — the subscriber half of the
    /// store-buffering handshake with [`EntryState::publish`]). The
    /// returned phase tells the caller what to do: `Subscribable` → wait
    /// for the producer (the subscription guarantees a publish after this
    /// point will observe it); `Full` → the result is already out, read
    /// it now; `SwappedOut`/`Accumulating` → the entry is not (or no
    /// longer) graftable, and the subscription has already been released.
    pub fn subscribe(&self) -> Phase {
        self.subs.fetch_add(1, Ordering::SeqCst);
        let ph = Self::decode(self.phase.load(Ordering::SeqCst));
        if !matches!(ph, Phase::Subscribable | Phase::Full) {
            self.subs.fetch_sub(1, Ordering::Release);
        }
        ph
    }

    /// Releases a subscription taken with [`EntryState::subscribe`] (only
    /// when it returned `Subscribable` or `Full`).
    pub fn unsubscribe(&self) {
        self.subs.fetch_sub(1, Ordering::Release);
    }

    /// Current graft-subscriber count (SeqCst: the producer half of the
    /// handshake — called after [`EntryState::publish`], it cannot read 0
    /// if a subscriber is committed to waiting).
    pub fn subscribers(&self) -> u32 {
        self.subs.load(Ordering::SeqCst)
    }

    /// True when the entry may be returned by lookups.
    pub fn is_visible(&self) -> bool {
        self.phase() == Phase::Full
    }

    /// Acquires a read pin on stripe 0 (see [`EntryState::pin_at`]).
    pub fn pin(&self) -> bool {
        self.pin_at(0)
    }

    /// Releases a stripe-0 read pin.
    pub fn unpin(&self) {
        self.unpin_at(0)
    }

    /// Acquires a read pin on stripe `stripe % PIN_STRIPES` (callers pass
    /// e.g. their worker index so concurrent readers spread over
    /// stripes). Returns false when the entry is not FULL — in
    /// particular, after SWAPPED_OUT; a true return guarantees the
    /// payload stays valid until the matching [`EntryState::unpin_at`]
    /// *on the same stripe*.
    ///
    /// Pin-then-check: the increment must be visible to the evictor's
    /// pin check before this thread's state check can miss an eviction,
    /// which is exactly the store-buffering pattern — both the RMW and
    /// the state load are SeqCst.
    pub fn pin_at(&self, stripe: usize) -> bool {
        let pins = &self.pins[stripe & (PIN_STRIPES - 1)];
        pins.fetch_add(1, Ordering::SeqCst);
        if self.phase.load(Ordering::SeqCst) == Phase::Full as u8 {
            true
        } else {
            pins.fetch_sub(1, Ordering::Release);
            false
        }
    }

    /// Releases a read pin taken with [`EntryState::pin_at`] on the same
    /// `stripe`.
    pub fn unpin_at(&self, stripe: usize) {
        self.pins[stripe & (PIN_STRIPES - 1)].fetch_sub(1, Ordering::Release);
    }

    /// FULL → SWAPPED_OUT, permitted only when no reader holds a pin on
    /// *any* stripe. Returns true when the caller may free/reuse the
    /// payload: the entry is marked SWAPPED_OUT *first*, then every pin
    /// stripe is checked (SeqCst on both, mirroring
    /// [`EntryState::pin_at`]) — any reader that slipped in either
    /// bumped its stripe before our check (we refuse) or will see
    /// SWAPPED_OUT and back off.
    pub fn try_swap_out(&self) -> bool {
        if self
            .phase
            .compare_exchange(
                Phase::Full as u8,
                Phase::SwappedOut as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false;
        }
        if self.pins.iter().all(|p| p.load(Ordering::SeqCst) == 0)
            && self.subs.load(Ordering::SeqCst) == 0
        {
            true
        } else {
            // A reader pinned (or a grafting consumer subscribed) between
            // our CAS and the check: back out.
            self.phase.store(Phase::Full as u8, Ordering::Release);
            false
        }
    }

    /// Unconditional transition to SWAPPED_OUT (caller holds exclusive
    /// structural access, e.g. the store's write lock).
    pub fn force_swap_out(&self) {
        self.phase.store(Phase::SwappedOut as u8, Ordering::Release);
    }

    /// FULL → RESTORABLE: demotes the entry to the tier-2 spill store,
    /// permitted only when no reader holds a pin on any stripe and no
    /// graft consumer is subscribed. Runs the same store-buffering
    /// protocol as [`EntryState::try_swap_out`] — mark RESTORABLE first,
    /// then cross-check every pin stripe and the subscriber count, all
    /// SeqCst — so a reader that raced in either bumped its stripe before
    /// our check (we back out to FULL) or observes RESTORABLE in
    /// [`EntryState::pin_at`] and backs off (model
    /// `ds_entry_pin_blocks_spill`). A true return means the caller owns
    /// the in-memory payload and may move it to disk: no pin can succeed
    /// again until a [`EntryState::restore`] republishes the bytes (model
    /// `ds_entry_no_read_after_spill_without_restore`).
    pub fn try_spill(&self) -> bool {
        if self
            .phase
            .compare_exchange(
                Phase::Full as u8,
                Phase::Restorable as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false;
        }
        if self.pins.iter().all(|p| p.load(Ordering::SeqCst) == 0)
            && self.subs.load(Ordering::SeqCst) == 0
        {
            true
        } else {
            // A reader pinned (or a grafting consumer subscribed) between
            // our CAS and the check: back out.
            self.phase.store(Phase::Full as u8, Ordering::Release);
            false
        }
    }

    /// RESTORABLE → FULL: re-publishes an entry whose payload was just
    /// re-read from the tier-2 store. SeqCst (⊇ Release) on success, so
    /// the restorer's payload write happens-before any reader whose
    /// [`EntryState::pin_at`] observes FULL. The CAS makes concurrent
    /// restorers (a flash crowd re-heating the same entry) resolve to
    /// exactly one winner — the losers see `false` and must treat the
    /// entry as already restored (model
    /// `ds_entry_restore_publishes_exactly_once`).
    pub fn restore(&self) -> bool {
        self.phase
            .compare_exchange(
                Phase::Restorable as u8,
                Phase::Full as u8,
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// True when the entry is spilled to tier 2 and can be re-heated.
    pub fn is_restorable(&self) -> bool {
        self.phase() == Phase::Restorable
    }

    /// Current pin count summed over all stripes (diagnostics).
    pub fn pin_count(&self) -> u32 {
        self.pins.iter().map(|p| p.load(Ordering::Relaxed)).sum()
    }
}

impl Default for EntryState {
    fn default() -> Self {
        EntryState::new()
    }
}

impl Clone for EntryState {
    fn clone(&self) -> Self {
        // A clone is a fresh, unpinned, unsubscribed snapshot of the phase.
        EntryState {
            phase: AtomicU8::new(self.phase.load(Ordering::Acquire)),
            pins: std::array::from_fn(|_| AtomicU32::new(0)),
            subs: AtomicU32::new(0),
        }
    }
}

/// A consumer's live graft attachment to an in-flight entry (DESIGN.md
/// §13): the handle the engine holds between [`EntryState::subscribe`]
/// and the matching unsubscribe. Copyable bookkeeping only — the
/// subscription itself lives in the entry's atomic subscriber count.
#[derive(Clone, Copy, Debug)]
pub struct GraftSubscription {
    /// The subscribed blob.
    pub blob: BlobId,
    /// The query producing it (the graft's reuse-edge source).
    pub producer: QueryId,
    /// Phase observed at subscribe time: `Subscribable` means the consumer
    /// must wait for the publish; `Full` means the result was already out.
    pub phase: Phase,
}

/// One intermediate result registered in the Data Store, together with its
/// semantic metadata (the producing query's predicate).
#[derive(Debug)]
pub struct BlobEntry<S> {
    /// The blob's identity.
    pub id: BlobId,
    /// The query whose execution produced (or is producing) this blob. Used
    /// to propagate evictions back to the scheduling graph as SWAPPED_OUT
    /// transitions.
    pub producer: QueryId,
    /// Predicate meta-information describing the result.
    pub spec: S,
    /// Size charged against the store budget, in bytes.
    pub size: u64,
    /// Result contents (or virtual for simulation).
    pub payload: Payload,
    /// Lifecycle state machine: entries are invisible to lookups and
    /// protected from eviction until published.
    pub state: EntryState,
    /// LRU stamp; atomic so lookups can touch entries through `&self`
    /// (concurrent readers under the store's read lock).
    pub(crate) last_access: AtomicU64,
    /// Measured recomputation cost in seconds (the producer's I/O + kernel
    /// time; virtual time in the simulator). Feeds the benefit-per-byte
    /// eviction score of [`crate::EvictionPolicy::CostBased`]. Written
    /// only under structural (`&mut`) access at commit time.
    pub(crate) cost: f64,
    /// Observed reuses (lookup matches that touched this entry); atomic so
    /// the read-side lookup path can count through `&self`.
    pub(crate) hits: AtomicU64,
}

impl<S: Clone> Clone for BlobEntry<S> {
    fn clone(&self) -> Self {
        BlobEntry {
            id: self.id,
            producer: self.producer,
            spec: self.spec.clone(),
            size: self.size,
            payload: self.payload.clone(),
            state: self.state.clone(),
            last_access: AtomicU64::new(self.last_access.load(Ordering::Relaxed)),
            cost: self.cost,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

impl<S> BlobEntry<S> {
    /// True when the entry may be returned by lookups.
    pub fn visible(&self) -> bool {
        self.state.is_visible()
    }

    /// Measured recomputation cost in seconds (0 until a costed commit).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Observed reuse count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The entry's benefit-per-byte eviction score (DESIGN.md §14):
    /// `cost × (1 + hits) / size` — what one byte of budget saves in
    /// recomputation seconds, scaled by how often the entry has actually
    /// been reused.
    pub fn score(&self) -> f64 {
        crate::benefit_score(self.cost, self.hits(), self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_len() {
        let p = Payload::Bytes(vec![1, 2, 3].into());
        assert_eq!(p.len(), Some(3));
        assert!(!p.is_empty());
        assert_eq!(Payload::Virtual.len(), None);
        assert!(!Payload::Virtual.is_empty());
        assert!(Payload::Bytes(Vec::new().into()).is_empty());
    }

    #[test]
    fn entry_state_lifecycle() {
        let st = EntryState::new();
        assert_eq!(st.phase(), Phase::Accumulating);
        assert!(!st.is_visible());
        assert!(!st.pin(), "accumulating entries cannot be pinned");
        assert!(st.publish());
        assert!(!st.publish(), "double publish refused");
        assert_eq!(st.phase(), Phase::Full);
        assert!(st.pin());
        assert!(!st.try_swap_out(), "pinned entries cannot be evicted");
        assert_eq!(st.phase(), Phase::Full);
        st.unpin();
        assert!(st.try_swap_out());
        assert_eq!(st.phase(), Phase::SwappedOut);
        assert!(!st.pin(), "swapped-out entries cannot be pinned");
        assert!(!st.try_swap_out(), "double swap-out refused");
    }

    #[test]
    fn force_swap_out_from_any_phase() {
        let st = EntryState::new();
        st.force_swap_out();
        assert_eq!(st.phase(), Phase::SwappedOut);
        assert!(!st.publish(), "cannot publish after swap-out");
    }

    #[test]
    fn striped_pins_all_block_swap_out() {
        let st = EntryState::new();
        assert!(st.publish());
        // A pin on any stripe (not just stripe 0) must block eviction.
        for stripe in [1usize, 5, PIN_STRIPES - 1, PIN_STRIPES + 3] {
            assert!(st.pin_at(stripe));
            assert!(!st.try_swap_out(), "stripe {stripe} pin ignored");
            assert_eq!(st.phase(), Phase::Full);
            st.unpin_at(stripe);
        }
        assert_eq!(st.pin_count(), 0);
        assert!(st.try_swap_out());
        assert!(!st.pin_at(3), "swapped-out entries cannot be pinned");
    }

    #[test]
    fn pin_count_sums_stripes() {
        let st = EntryState::new();
        assert!(st.publish());
        assert!(st.pin_at(0));
        assert!(st.pin_at(1));
        assert!(st.pin_at(9)); // aliases stripe 1
        assert_eq!(st.pin_count(), 3);
        st.unpin_at(0);
        st.unpin_at(1);
        st.unpin_at(9);
        assert_eq!(st.pin_count(), 0);
    }

    #[test]
    fn subscribable_lifecycle() {
        let st = EntryState::new();
        assert!(st.make_subscribable());
        assert_eq!(st.phase(), Phase::Subscribable);
        assert!(!st.is_visible(), "subscribable entries stay invisible");
        assert!(!st.pin(), "subscribable entries cannot be pinned yet");
        assert!(!st.make_subscribable(), "double open refused");
        assert_eq!(st.subscribe(), Phase::Subscribable);
        assert_eq!(st.subscribers(), 1);
        assert!(st.publish(), "publish works from SUBSCRIBABLE");
        assert_eq!(st.phase(), Phase::Full);
        assert!(!st.try_swap_out(), "subscribed entries cannot be evicted");
        assert_eq!(st.phase(), Phase::Full);
        st.unsubscribe();
        assert_eq!(st.subscribers(), 0);
        assert!(st.try_swap_out());
    }

    #[test]
    fn subscribe_after_publish_sees_full() {
        let st = EntryState::new();
        assert!(st.make_subscribable());
        assert!(st.publish());
        assert_eq!(st.subscribe(), Phase::Full);
        assert_eq!(st.subscribers(), 1);
        st.unsubscribe();
    }

    #[test]
    fn subscribe_on_dead_entry_self_releases() {
        let st = EntryState::new();
        st.force_swap_out();
        assert_eq!(st.subscribe(), Phase::SwappedOut);
        assert_eq!(st.subscribers(), 0, "failed subscribe leaves no count");
        let acc = EntryState::new();
        assert_eq!(acc.subscribe(), Phase::Accumulating);
        assert_eq!(acc.subscribers(), 0);
    }

    #[test]
    fn make_subscribable_refused_once_published() {
        let st = EntryState::new();
        assert!(st.publish());
        assert!(!st.make_subscribable());
    }

    #[test]
    fn entry_panic_back_out_releases_subscribers() {
        // The supervision back-out arc (DESIGN.md §15): a producer died
        // mid-compute while a grafting consumer was subscribed to its
        // CLAIMED (SUBSCRIBABLE) entry. The back-out force-swaps the
        // entry out; the subscriber's next phase check observes the
        // terminal state (never a stale SUBSCRIBABLE it would wait on
        // forever), its unsubscribe still balances, and no later pin or
        // publish can resurrect the entry.
        let st = EntryState::new();
        assert!(st.make_subscribable());
        assert_eq!(st.subscribe(), Phase::Subscribable);
        assert_eq!(st.subscribers(), 1);
        // Producer panics: the worker's back-out runs under the store's
        // write lock and unconditionally kills the reservation.
        st.force_swap_out();
        assert_eq!(st.phase(), Phase::SwappedOut);
        // The woken subscriber re-checks, sees the tombstone, releases.
        st.unsubscribe();
        assert_eq!(st.subscribers(), 0);
        assert!(!st.publish(), "dead reservation cannot publish");
        assert!(!st.pin(), "dead reservation cannot be read");
        assert!(!st.try_spill(), "dead reservation cannot spill");
        // A late subscriber (raced the back-out) self-releases.
        assert_eq!(st.subscribe(), Phase::SwappedOut);
        assert_eq!(st.subscribers(), 0);
    }

    #[test]
    fn spill_restore_lifecycle() {
        let st = EntryState::new();
        assert!(!st.try_spill(), "only FULL entries can spill");
        assert!(st.publish());
        assert!(st.try_spill());
        assert_eq!(st.phase(), Phase::Restorable);
        assert!(st.is_restorable());
        assert!(!st.is_visible(), "restorable entries are invisible");
        assert!(!st.pin(), "no read after spill without restore");
        assert!(!st.try_swap_out(), "swap-out starts from FULL only");
        assert!(!st.try_spill(), "double spill refused");
        assert!(st.restore());
        assert_eq!(st.phase(), Phase::Full);
        assert!(!st.restore(), "second restorer loses the race");
        assert!(st.pin(), "restored entries are readable again");
        st.unpin();
    }

    #[test]
    fn pins_and_subscriptions_block_spill() {
        let st = EntryState::new();
        assert!(st.make_subscribable());
        assert_eq!(st.subscribe(), Phase::Subscribable);
        assert!(st.publish());
        assert!(!st.try_spill(), "subscribed entries cannot spill");
        assert_eq!(st.phase(), Phase::Full, "failed spill backs out");
        st.unsubscribe();
        assert!(st.pin_at(5));
        assert!(!st.try_spill(), "pinned entries cannot spill");
        assert_eq!(st.phase(), Phase::Full);
        st.unpin_at(5);
        assert!(st.try_spill());
    }

    #[test]
    fn restorable_entry_rejects_subscribe_and_publish() {
        let st = EntryState::new();
        assert!(st.publish());
        assert!(st.try_spill());
        assert_eq!(st.subscribe(), Phase::Restorable);
        assert_eq!(st.subscribers(), 0, "failed subscribe self-releases");
        assert!(!st.publish(), "publish cannot resurrect a spilled entry");
        assert!(!st.make_subscribable());
        st.force_swap_out();
        assert!(!st.restore(), "dropped tier-2 entries stay dead");
    }

    #[test]
    fn clone_resets_pins() {
        let st = EntryState::new();
        assert!(st.publish());
        assert!(st.pin());
        let c = st.clone();
        assert_eq!(c.phase(), Phase::Full);
        assert_eq!(c.pin_count(), 0);
        st.unpin();
    }
}
