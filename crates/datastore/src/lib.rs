//! # vmqs-datastore
//!
//! The Data Store Manager (DS) of the VMQS middleware: a byte-budgeted
//! **semantic cache** for intermediate query results (paper §2).
//!
//! Results are stored together with their predicate meta-information, so a
//! later query can discover — via the application's `cmp`/`overlap`
//! operators — that a cached result answers it completely or partially. The
//! store exposes the paper's interface: a `malloc`-style two-phase
//! allocation (reserve while the producing query executes, commit on
//! completion) and a `lookup` operation used by the query server before
//! planning any I/O.
//!
//! Evictions are reported back to the caller as `(blob, producer-query,
//! spec)` triples so the scheduling graph can transition the producers to
//! SWAPPED_OUT — the sharded server additionally uses the spec to route
//! each eviction to the producer's home shard — keeping "the up-to-date
//! state of the system … reflected to the query server" (paper §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod spatial_store;
mod store;

pub use entry::{BlobEntry, EntryState, GraftSubscription, Payload, Phase, PIN_STRIPES};
pub use spatial_store::SpatialDataStore;
pub use store::{
    benefit_score, DataStore, DsError, DsStats, EvictionPolicy, EvictionRecord, GraftCandidate,
    Match, SpillRequest, RECOVERED_PRODUCER,
};
