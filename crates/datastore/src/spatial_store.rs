//! The Index Manager's accelerated Data Store (paper Fig. 1).
//!
//! [`SpatialDataStore`] pairs the semantic cache with a
//! [`vmqs_core::GridIndex`] over the cached results' footprints. Lookups
//! probe the grid for blobs whose rectangles intersect the query window —
//! a sound filter, since two predicates can only have nonzero `overlap`
//! if their footprints intersect on the same dataset — and evaluate the
//! application's operators on those candidates only. At the paper's scale
//! (≲ hundreds of cached blobs) the plain linear scan is equally fine;
//! this store is the sub-linear variant for larger deployments, with an
//! equivalence property test guaranteeing identical results.

use crate::entry::{BlobEntry, Payload, Phase};
use crate::store::{
    DataStore, DsError, DsStats, EvictionPolicy, EvictionRecord, GraftCandidate, Match,
    SpillRequest,
};
use vmqs_core::spatial::{GridIndex, SpatialSpec};
use vmqs_core::{BlobId, QueryId};

/// A [`DataStore`] with spatially indexed lookups.
#[derive(Debug)]
pub struct SpatialDataStore<S: SpatialSpec> {
    inner: DataStore<S>,
    index: GridIndex,
}

impl<S: SpatialSpec> SpatialDataStore<S> {
    /// Creates a store with the given byte budget and index cell size (in
    /// base-resolution pixels; pick roughly the footprint of a typical
    /// cached result).
    pub fn new(budget: u64, cell_size: u32) -> Self {
        SpatialDataStore {
            inner: DataStore::new(budget),
            index: GridIndex::new(cell_size),
        }
    }

    /// Creates a store with an explicit eviction policy.
    pub fn with_policy(budget: u64, cell_size: u32, policy: EvictionPolicy) -> Self {
        SpatialDataStore {
            inner: DataStore::with_policy(budget, policy),
            index: GridIndex::new(cell_size),
        }
    }

    /// See [`DataStore::with_tier2`]: enables the spill tier with the
    /// given byte budget.
    pub fn with_tier2(mut self, tier2_budget: u64) -> Self {
        self.inner = self.inner.with_tier2(tier2_budget);
        self
    }

    /// See [`DataStore::tier2_budget`].
    pub fn tier2_budget(&self) -> u64 {
        self.inner.tier2_budget()
    }

    /// See [`DataStore::tier2_used`].
    pub fn tier2_used(&self) -> u64 {
        self.inner.tier2_used()
    }

    /// See [`DataStore::take_pending_spills`].
    pub fn take_pending_spills(&mut self) -> Vec<SpillRequest<S>> {
        self.inner.take_pending_spills()
    }

    /// See [`DataStore::budget`].
    pub fn budget(&self) -> u64 {
        self.inner.budget()
    }

    /// See [`DataStore::used`].
    pub fn used(&self) -> u64 {
        self.inner.used()
    }

    /// See [`DataStore::len`].
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// See [`DataStore::stats`].
    pub fn stats(&self) -> DsStats {
        self.inner.stats()
    }

    /// See [`DataStore::malloc`]. Evicted blobs leave the index.
    pub fn malloc(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let before = evicted.len();
        let blob = self.inner.malloc(producer, spec, size, evicted)?;
        for r in &evicted[before..] {
            self.index.remove(r.blob.raw());
        }
        Ok(blob)
    }

    /// See [`DataStore::commit`]. The blob becomes visible to indexed
    /// lookups.
    pub fn commit(&mut self, blob: BlobId, payload: Payload) {
        self.inner.commit(blob, payload);
        let (dataset, rect) = self
            .inner
            .get(blob)
            .expect("blob just committed")
            .spec
            .region_key();
        self.index.insert(blob.raw(), dataset, rect);
    }

    /// `malloc` + `commit` in one step.
    pub fn insert(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let blob = self.malloc(producer, spec, size, evicted)?;
        self.commit(blob, payload);
        Ok(blob)
    }

    /// See [`DataStore::commit_costed`]: `commit` that also records the
    /// measured recomputation cost for benefit scoring.
    pub fn commit_costed(&mut self, blob: BlobId, payload: Payload, cost: f64) {
        self.inner.commit_costed(blob, payload, cost);
        let (dataset, rect) = self
            .inner
            .get(blob)
            .expect("blob just committed")
            .spec
            .region_key();
        self.index.insert(blob.raw(), dataset, rect);
    }

    /// See [`DataStore::insert_costed`]: costed `malloc` (with admission
    /// control under [`EvictionPolicy::CostBased`]) + costed commit.
    pub fn insert_costed(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        cost: f64,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let before = evicted.len();
        let blob = self
            .inner
            .insert_costed(producer, spec, size, cost, payload, evicted)?;
        for r in &evicted[before..] {
            self.index.remove(r.blob.raw());
        }
        let (dataset, rect) = self
            .inner
            .get(blob)
            .expect("blob just committed")
            .spec
            .region_key();
        self.index.insert(blob.raw(), dataset, rect);
        Ok(blob)
    }

    /// See [`DataStore::lookup_restorable_exact`]. Spilled entries stay in
    /// the spatial index (they still hold a claim on the budget), but the
    /// inner scan is cheap: there are at most as many RESTORABLE entries
    /// as the tier-2 budget admits.
    pub fn lookup_restorable_exact(&self, probe: &S) -> Option<(BlobId, QueryId, u64)> {
        self.inner.lookup_restorable_exact(probe)
    }

    /// See [`DataStore::restore`]. Entries evicted to make room leave the
    /// index; the restored entry was never removed from it.
    pub fn restore(
        &mut self,
        blob: BlobId,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> bool {
        let before = evicted.len();
        let ok = self.inner.restore(blob, payload, evicted);
        for r in &evicted[before..] {
            self.index.remove(r.blob.raw());
        }
        ok
    }

    /// See [`DataStore::adopt_restorable`]. The adopted frame joins the
    /// grid index immediately (like a spilled entry, which stays indexed)
    /// so a later restore serves indexed lookups without re-insertion.
    pub fn adopt_restorable(&mut self, blob: BlobId, spec: S, size: u64) -> bool {
        let (dataset, rect) = spec.region_key();
        if self.inner.adopt_restorable(blob, spec, size) {
            self.index.insert(blob.raw(), dataset, rect);
            true
        } else {
            false
        }
    }

    /// See [`DataStore::drop_restorable`]. The dropped blob leaves the
    /// index.
    pub fn drop_restorable(&mut self, blob: BlobId) -> Option<EvictionRecord<S>> {
        let rec = self.inner.drop_restorable(blob)?;
        self.index.remove(blob.raw());
        Some(rec)
    }

    /// See [`DataStore::abort`].
    pub fn abort(&mut self, blob: BlobId) {
        // Uncommitted blobs were never indexed.
        self.inner.abort(blob);
    }

    /// See [`DataStore::reserve_subscribable`]. Evicted blobs leave the
    /// index; the reservation itself is only indexed at commit.
    pub fn reserve_subscribable(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let before = evicted.len();
        let blob = self
            .inner
            .reserve_subscribable(producer, spec, size, evicted)?;
        for r in &evicted[before..] {
            self.index.remove(r.blob.raw());
        }
        Ok(blob)
    }

    /// See [`DataStore::lookup_subscribable`]. A plain scan: in-flight
    /// entries are not in the spatial index (they join it at commit) and
    /// there are at most as many as there are executing queries.
    pub fn lookup_subscribable(&self, probe: &S) -> Vec<GraftCandidate> {
        self.inner.lookup_subscribable(probe)
    }

    /// See [`DataStore::subscribe`].
    pub fn subscribe(&self, blob: BlobId) -> Option<Phase> {
        self.inner.subscribe(blob)
    }

    /// See [`DataStore::unsubscribe`].
    pub fn unsubscribe(&self, blob: BlobId) {
        self.inner.unsubscribe(blob)
    }

    /// See [`DataStore::has_equivalent`].
    pub fn has_equivalent(&self, probe: &S) -> bool {
        self.inner.has_equivalent(probe)
    }

    /// See [`DataStore::remove`].
    pub fn remove(&mut self, blob: BlobId) -> Option<BlobEntry<S>> {
        self.index.remove(blob.raw());
        self.inner.remove(blob)
    }

    /// See [`DataStore::get`].
    pub fn get(&self, blob: BlobId) -> Option<&BlobEntry<S>> {
        self.inner.get(blob)
    }

    /// Indexed lookup: identical results to [`DataStore::lookup`], probing
    /// only blobs whose footprints intersect the query's. Takes `&self`
    /// (like the linear store's lookup) so the threaded engine can serve
    /// concurrent lookups under a shared read lock.
    pub fn lookup(&self, probe: &S) -> Vec<Match> {
        let (dataset, rect) = probe.region_key();
        let candidates: Vec<BlobId> = self
            .index
            .query(dataset, &rect)
            .into_iter()
            .map(BlobId)
            .collect();
        self.inner.lookup_filtered(probe, Some(&candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::spec::testutil::IntervalSpec;

    fn spec(start: u64, len: u64, scale: u64) -> IntervalSpec {
        IntervalSpec::new(start, len, scale)
    }

    fn store() -> SpatialDataStore<IntervalSpec> {
        SpatialDataStore::new(10_000, 64)
    }

    #[test]
    fn indexed_lookup_matches_linear_lookup() {
        let mut indexed = store();
        let mut linear: DataStore<IntervalSpec> = DataStore::new(10_000);
        let mut ev = Vec::new();
        for i in 0..40u64 {
            let s = spec((i * 37) % 800, 50 + (i % 7) * 10, 1 + (i % 2));
            indexed
                .insert(QueryId(i), s.clone(), 10, Payload::Virtual, &mut ev)
                .unwrap();
            linear
                .insert(QueryId(i), s, 10, Payload::Virtual, &mut ev)
                .unwrap();
        }
        for p in 0..10u64 {
            let probe = spec((p * 83) % 700, 120, 2);
            let a = indexed.lookup(&probe);
            let b = linear.lookup(&probe);
            assert_eq!(a.len(), b.len(), "probe {probe:?}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.blob, y.blob);
                assert_eq!(x.reuse_bytes, y.reuse_bytes);
                assert_eq!(x.overlap, y.overlap);
            }
        }
    }

    #[test]
    fn eviction_removes_from_index() {
        let mut ds: SpatialDataStore<IntervalSpec> = SpatialDataStore::new(30, 64);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 100, 1), 20, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(QueryId(2), spec(500, 100, 1), 20, Payload::Virtual, &mut ev)
            .unwrap();
        assert_eq!(ev.len(), 1);
        // The evicted blob must not be returned by lookups.
        assert!(ds.lookup(&spec(0, 100, 1)).is_empty());
        assert_eq!(ds.lookup(&spec(500, 100, 1)).len(), 1);
    }

    #[test]
    fn uncommitted_blobs_invisible_and_abortable() {
        let mut ds = store();
        let mut ev = Vec::new();
        let b = ds.malloc(QueryId(1), spec(0, 100, 1), 10, &mut ev).unwrap();
        assert!(ds.lookup(&spec(0, 100, 1)).is_empty());
        ds.abort(b);
        assert_eq!(ds.used(), 0);
        assert!(ds.is_empty());
    }

    #[test]
    fn remove_clears_index_entry() {
        let mut ds = store();
        let mut ev = Vec::new();
        let b = ds
            .insert(QueryId(1), spec(0, 100, 1), 10, Payload::Virtual, &mut ev)
            .unwrap();
        assert_eq!(ds.lookup(&spec(0, 100, 1)).len(), 1);
        ds.remove(b);
        assert!(ds.lookup(&spec(0, 100, 1)).is_empty());
        assert!(ds.get(b).is_none());
    }

    #[test]
    fn exact_hit_first_like_linear_store() {
        let mut ds = store();
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 200, 1), 10, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(QueryId(2), spec(0, 100, 1), 10, Payload::Virtual, &mut ev)
            .unwrap();
        let ms = ds.lookup(&spec(0, 100, 1));
        assert_eq!(ms[0].producer, QueryId(2));
        assert_eq!(ms[0].overlap, 1.0);
        assert_eq!(ds.stats().exact_hits, 1);
    }
}
