//! The Data Store Manager (paper §2, "Data Store Manager").
//!
//! A semantic cache: buffer space for intermediate results tagged with
//! predicate metadata, so that results of finished queries can answer (or
//! partially answer) queries submitted later. Provides the paper's
//! `malloc`-style two-phase allocation (space is reserved and metadata
//! recorded while the producing query executes; the blob becomes visible to
//! `lookup` once committed) and byte-budgeted eviction, which reports the
//! evicted producers so the engine can mark them SWAPPED_OUT in the
//! scheduling graph.

use crate::entry::{BlobEntry, EntryState, Payload, Phase};
use std::collections::HashMap;
use vmqs_core::sync::atomic::{AtomicU64, Ordering};
use vmqs_core::{BlobId, QueryId, QuerySpec};

/// One eviction reported back to the caller: the evicted blob, the query
/// that produced it (to be marked SWAPPED_OUT in the scheduling graph),
/// and the victim's predicate — the sharded engine derives the
/// producer's home shard from the spec, so the eviction can be applied
/// under that shard's lock without a global map.
pub type EvictionRecord<S> = (BlobId, QueryId, S);

/// Which ready, unpinned blob to evict first when space is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used first (default; what a buffer manager would do).
    Lru,
    /// Largest blob first (frees space fastest).
    LargestFirst,
    /// Most recently used first (pessimal for locality; ablation baseline).
    Mru,
}

/// An in-flight entry a query could graft onto (DESIGN.md §13): returned
/// by [`DataStore::lookup_subscribable`].
#[derive(Clone, Debug)]
pub struct GraftCandidate {
    /// The SUBSCRIBABLE blob.
    pub blob: BlobId,
    /// The query currently producing it.
    pub producer: QueryId,
    /// `cmp(entry.spec, probe)` — the published result will answer the
    /// probe completely.
    pub exact: bool,
    /// `overlap(entry.spec, probe)` in `[0, 1]`.
    pub overlap: f64,
    /// `overlap · qoutsize(entry.spec)` — reusable bytes once published.
    pub reuse_bytes: u64,
}

/// A partial-reuse lookup result.
#[derive(Clone, Debug)]
pub struct Match {
    /// The matching blob.
    pub blob: BlobId,
    /// The producer query of the blob.
    pub producer: QueryId,
    /// `overlap(blob.spec, probe)` in `[0, 1]`.
    pub overlap: f64,
    /// `overlap · qoutsize(blob.spec)` — reusable bytes.
    pub reuse_bytes: u64,
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsStats {
    /// Lookups answered completely by one cached blob (`cmp` true).
    pub exact_hits: u64,
    /// Lookups with at least one nonzero-overlap match (but no exact hit).
    pub partial_hits: u64,
    /// Lookups with no usable match.
    pub misses: u64,
    /// Blobs committed.
    pub committed: u64,
    /// Blobs evicted to make room.
    pub evicted: u64,
    /// Bytes freed by eviction.
    pub bytes_evicted: u64,
    /// Allocations rejected because the blob exceeds the whole budget (or
    /// pinned entries prevent freeing enough space).
    pub rejected: u64,
}

/// Error returned by [`DataStore::malloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DsError {
    /// The requested size can never fit (larger than the total budget, or
    /// caching is disabled with a zero budget).
    TooLarge,
    /// Enough bytes exist but are held by uncommitted (pinned) entries.
    Busy,
}

impl std::fmt::Display for DsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsError::TooLarge => write!(f, "allocation exceeds data store budget"),
            DsError::Busy => write!(f, "data store space held by uncommitted entries"),
        }
    }
}

impl std::error::Error for DsError {}

/// Hit/miss and eviction counters kept in atomics so the read-side API
/// (`lookup*`, `touch`, `stats`) works through `&self`: the threaded
/// server holds only a read lock on the store for the per-query lookup
/// hot path. All counters use relaxed ordering — they are statistics,
/// not synchronization.
#[derive(Debug, Default)]
struct StatCells {
    exact_hits: AtomicU64,
    partial_hits: AtomicU64,
    misses: AtomicU64,
    committed: AtomicU64,
    evicted: AtomicU64,
    bytes_evicted: AtomicU64,
    rejected: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> DsStats {
        DsStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// The Data Store Manager.
///
/// Structural mutation (`malloc`/`commit`/`insert`/`remove`) requires
/// `&mut self`; the read side (`lookup*`, `touch`, `stats`) takes `&self`
/// with LRU stamps and counters in atomics, so the threaded server can
/// serve many concurrent lookups under a shared read lock and take the
/// write lock only to admit or evict.
#[derive(Debug)]
pub struct DataStore<S: QuerySpec> {
    budget: u64,
    used: u64,
    entries: HashMap<BlobId, BlobEntry<S>>,
    next_blob: u64,
    clock: AtomicU64,
    policy: EvictionPolicy,
    stats: StatCells,
}

impl<S: QuerySpec> DataStore<S> {
    /// Creates a store with the given byte budget. A budget of `0` disables
    /// caching entirely (every `malloc` is rejected) — used by the paper's
    /// caching-on/off experiment.
    pub fn new(budget: u64) -> Self {
        Self::with_policy(budget, EvictionPolicy::Lru)
    }

    /// Creates a store with an explicit eviction policy.
    pub fn with_policy(budget: u64, policy: EvictionPolicy) -> Self {
        DataStore {
            budget,
            used: 0,
            entries: HashMap::new(),
            next_blob: 0,
            clock: AtomicU64::new(0),
            policy,
            stats: StatCells::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently allocated (committed + uncommitted).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of entries (committed + uncommitted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DsStats {
        self.stats.snapshot()
    }

    /// Reserves `size` bytes for the result of `producer` described by
    /// `spec` (the paper's `malloc` with its accumulator meta-data object).
    ///
    /// Evicts ready blobs per the eviction policy until the reservation
    /// fits; evicted producers are appended to `evicted` so the caller can
    /// transition them to SWAPPED_OUT in the scheduling graph. The new entry
    /// is invisible to lookups until [`DataStore::commit`].
    pub fn malloc(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        if size > self.budget {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(DsError::TooLarge);
        }
        while self.used + size > self.budget {
            match self.pick_victim() {
                Some(victim) => {
                    let e = self.remove(victim).expect("victim exists");
                    // The entry is out of the map; mark it so any clone
                    // or late reader holding a pin attempt sees
                    // SWAPPED_OUT instead of a stale FULL.
                    e.state.force_swap_out();
                    self.stats.evicted.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .bytes_evicted
                        .fetch_add(e.size, Ordering::Relaxed);
                    evicted.push((e.id, e.producer, e.spec));
                }
                None => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(DsError::Busy);
                }
            }
        }
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.entries.insert(
            id,
            BlobEntry {
                id,
                producer,
                spec,
                size,
                payload: Payload::Virtual,
                state: EntryState::new(),
                last_access: AtomicU64::new(now),
            },
        );
        self.used += size;
        Ok(id)
    }

    /// Publishes a previously `malloc`ed blob with its final payload; it is
    /// now visible to lookups and eligible for eviction.
    pub fn commit(&mut self, blob: BlobId, payload: Payload) {
        let e = self
            .entries
            .get_mut(&blob)
            .unwrap_or_else(|| panic!("commit of unknown blob {blob}"));
        if let Some(len) = payload.len() {
            debug_assert_eq!(
                len as u64, e.size,
                "committed payload size differs from reservation"
            );
        }
        e.payload = payload;
        assert!(e.state.publish(), "double commit of {blob}");
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: `malloc` + `commit` in one step (used by tests and by
    /// engines that compute results before caching them).
    pub fn insert(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let id = self.malloc(producer, spec, size, evicted)?;
        self.commit(id, payload);
        Ok(id)
    }

    /// Drops an uncommitted reservation (producing query aborted). The
    /// entry is marked SWAPPED_OUT before removal so a grafting consumer
    /// holding its [`BlobId`] (or a cloned entry) can never mistake it for
    /// in-flight.
    pub fn abort(&mut self, blob: BlobId) {
        if let Some(e) = self.entries.get(&blob) {
            assert!(!e.state.is_visible(), "abort of committed blob {blob}");
            e.state.force_swap_out();
            self.remove(blob);
        }
    }

    /// The graft-enabled `malloc`: reserves space like
    /// [`DataStore::malloc`] and immediately opens the entry to graft
    /// subscriptions (phase SUBSCRIBABLE). The entry stays invisible to
    /// lookups and protected from eviction until [`DataStore::commit`]
    /// publishes it, but overlapping queries can already discover it via
    /// [`DataStore::lookup_subscribable`] and subscribe.
    pub fn reserve_subscribable(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let blob = self.malloc(producer, spec, size, evicted)?;
        let opened = self.entries[&blob].state.make_subscribable();
        debug_assert!(opened, "fresh reservation must be ACCUMULATING");
        Ok(blob)
    }

    /// Finds in-flight SUBSCRIBABLE entries whose eventual result can
    /// answer `probe` completely (`cmp`) or partially (`overlap > 0`).
    /// Exact candidates first, then by descending reusable bytes, then
    /// blob id. Reads no stats and touches nothing: grafting decisions
    /// must not perturb LRU or hit-rate accounting.
    pub fn lookup_subscribable(&self, probe: &S) -> Vec<GraftCandidate> {
        let mut out: Vec<GraftCandidate> = Vec::new();
        // lint:sorted: result sorted below; iteration order is irrelevant
        for e in self.entries.values() {
            if e.state.phase() != Phase::Subscribable {
                continue;
            }
            let exact = e.spec.cmp(probe);
            let ov = if exact { 1.0 } else { e.spec.overlap(probe) };
            if !exact && ov <= 0.0 {
                continue;
            }
            out.push(GraftCandidate {
                blob: e.id,
                producer: e.producer,
                exact,
                overlap: ov,
                reuse_bytes: if exact {
                    e.spec.qoutsize()
                } else {
                    e.spec.reuse_bytes(probe)
                },
            });
        }
        out.sort_by(|a, b| {
            b.exact
                .cmp(&a.exact)
                .then(b.reuse_bytes.cmp(&a.reuse_bytes))
                .then(a.blob.cmp(&b.blob))
        });
        out
    }

    /// Attaches a graft subscription to `blob` (see
    /// [`EntryState::subscribe`]). `None` when the blob no longer exists.
    pub fn subscribe(&self, blob: BlobId) -> Option<Phase> {
        self.entries.get(&blob).map(|e| e.state.subscribe())
    }

    /// Releases a subscription on `blob`. A no-op when the entry was
    /// already aborted/removed (its state machine died with it).
    pub fn unsubscribe(&self, blob: BlobId) {
        if let Some(e) = self.entries.get(&blob) {
            e.state.unsubscribe();
        }
    }

    /// True when a *visible* cached entry `cmp`-matches `probe`. Unlike
    /// [`DataStore::lookup_exact`] this reads no stats and touches no LRU
    /// stamp — it is the duplicate-full-compute detector, a pure probe.
    pub fn has_equivalent(&self, probe: &S) -> bool {
        self.entries
            .values()
            .any(|e| e.visible() && e.spec.cmp(probe))
    }

    /// Looks up a blob whose predicate `cmp`-matches `probe` exactly
    /// (complete reuse). Touches the blob for LRU on hit. Updates hit/miss
    /// statistics; callers interested in partial reuse should use
    /// [`DataStore::lookup`] instead, which checks both.
    pub fn lookup_exact(&self, probe: &S) -> Option<Match> {
        let hit = self
            .entries
            .values()
            .filter(|e| e.visible())
            .find(|e| e.spec.cmp(probe))
            .map(|e| (e.id, e.producer, e.spec.qoutsize()));
        match hit {
            Some((id, producer, size)) => {
                self.touch(id);
                self.stats.exact_hits.fetch_add(1, Ordering::Relaxed);
                Some(Match {
                    blob: id,
                    producer,
                    overlap: 1.0,
                    reuse_bytes: size,
                })
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The paper's `lookup`: finds cached results that can answer `probe`
    /// completely or partially. Returns matches sorted by descending
    /// reusable bytes; an exact (`cmp`) match, if any, is always first with
    /// `overlap == 1.0`. Touches every returned blob.
    pub fn lookup(&self, probe: &S) -> Vec<Match> {
        self.lookup_filtered(probe, None)
    }

    /// Like [`DataStore::lookup`], but restricted to `candidates` when
    /// given — the hook used by the Index Manager's spatially indexed
    /// store, which can prove all other blobs have zero overlap.
    pub fn lookup_filtered(&self, probe: &S, candidates: Option<&[BlobId]>) -> Vec<Match> {
        let mut matches: Vec<Match> = Vec::new();
        let mut exact: Option<Match> = None;
        let candidate_entries: Vec<&BlobEntry<S>> = match candidates {
            Some(ids) => ids
                .iter()
                .filter_map(|id| self.entries.get(id))
                .filter(|e| e.visible())
                .collect(),
            None => self.entries.values().filter(|e| e.visible()).collect(),
        };
        for e in candidate_entries {
            if exact.is_none() && e.spec.cmp(probe) {
                exact = Some(Match {
                    blob: e.id,
                    producer: e.producer,
                    overlap: 1.0,
                    reuse_bytes: e.spec.qoutsize(),
                });
                continue;
            }
            let ov = e.spec.overlap(probe);
            if ov > 0.0 {
                matches.push(Match {
                    blob: e.id,
                    producer: e.producer,
                    overlap: ov,
                    reuse_bytes: e.spec.reuse_bytes(probe),
                });
            }
        }
        matches.sort_by(|a, b| b.reuse_bytes.cmp(&a.reuse_bytes).then(a.blob.cmp(&b.blob)));
        if let Some(x) = exact {
            matches.insert(0, x);
            self.stats.exact_hits.fetch_add(1, Ordering::Relaxed);
        } else if !matches.is_empty() {
            self.stats.partial_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        for m in &matches {
            self.touch(m.blob);
        }
        matches
    }

    /// Reads an entry.
    pub fn get(&self, blob: BlobId) -> Option<&BlobEntry<S>> {
        self.entries.get(&blob)
    }

    /// Marks a blob as used now (LRU bookkeeping).
    pub fn touch(&self, blob: BlobId) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = self.entries.get(&blob) {
            e.last_access.store(now, Ordering::Relaxed);
        }
    }

    /// Removes an entry, releasing its bytes; returns it.
    pub fn remove(&mut self, blob: BlobId) -> Option<BlobEntry<S>> {
        let e = self.entries.remove(&blob)?;
        self.used -= e.size;
        Some(e)
    }

    /// Iterates over all visible entries (test/diagnostic aid).
    pub fn iter_visible(&self) -> impl Iterator<Item = &BlobEntry<S>> {
        self.entries.values().filter(|e| e.visible())
    }

    fn pick_victim(&self) -> Option<BlobId> {
        // Entries with live graft subscriptions are as good as pinned: a
        // consumer is committed to reading them the moment they publish.
        let candidates = self
            .entries
            .values()
            .filter(|e| e.visible() && e.state.subscribers() == 0);
        let stamp = |e: &BlobEntry<S>| e.last_access.load(Ordering::Relaxed);
        match self.policy {
            EvictionPolicy::Lru => candidates.min_by_key(|e| stamp(e)).map(|e| e.id),
            EvictionPolicy::Mru => candidates.max_by_key(|e| stamp(e)).map(|e| e.id),
            EvictionPolicy::LargestFirst => candidates
                .max_by_key(|e| (e.size, u64::MAX - stamp(e)))
                .map(|e| e.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::spec::testutil::IntervalSpec;

    fn spec(start: u64, len: u64, scale: u64) -> IntervalSpec {
        IntervalSpec::new(start, len, scale)
    }

    fn store(budget: u64) -> DataStore<IntervalSpec> {
        DataStore::new(budget)
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        ds.insert(QueryId(1), s.clone(), 100, Payload::Virtual, &mut ev)
            .unwrap();
        assert!(ev.is_empty());
        let m = ds.lookup_exact(&s).unwrap();
        assert_eq!(m.overlap, 1.0);
        assert_eq!(m.producer, QueryId(1));
        assert!(ds.lookup_exact(&spec(999, 5, 1)).is_none());
        assert_eq!(ds.stats().exact_hits, 1);
        assert_eq!(ds.stats().misses, 1);
    }

    #[test]
    fn uncommitted_blobs_invisible_and_unevictable() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds.malloc(QueryId(1), s.clone(), 100, &mut ev).unwrap();
        assert!(ds.lookup_exact(&s).is_none());
        // A second allocation cannot evict the uncommitted one.
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
        ds.commit(blob, Payload::Virtual);
        assert!(ds.lookup_exact(&s).is_some());
        // Now eviction is possible.
        assert!(ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev).is_ok());
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].0, ev[0].1), (blob, QueryId(1)));
        assert_eq!(ev[0].2, s, "eviction record carries the victim's spec");
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut ds = store(0);
        let mut ev = Vec::new();
        assert_eq!(
            ds.insert(QueryId(1), spec(0, 10, 1), 10, Payload::Virtual, &mut ev),
            Err(DsError::TooLarge)
        );
        assert_eq!(ds.stats().rejected, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut ds = store(300);
        let mut ev = Vec::new();
        let a = ds
            .insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        let _b = ds
            .insert(
                QueryId(2),
                spec(1000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        let _c = ds
            .insert(
                QueryId(3),
                spec(2000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        // Touch a so b becomes the LRU victim.
        ds.touch(a);
        ds.insert(
            QueryId(4),
            spec(3000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].1, QueryId(2));
        assert_eq!(ds.used(), 300);
    }

    #[test]
    fn largest_first_evicts_biggest() {
        let mut ds: DataStore<IntervalSpec> =
            DataStore::with_policy(300, EvictionPolicy::LargestFirst);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 200, 1), 200, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(QueryId(2), spec(1000, 50, 1), 50, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].1, QueryId(1));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let mut ds: DataStore<IntervalSpec> = DataStore::with_policy(200, EvictionPolicy::Mru);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.insert(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev[0].1, QueryId(2));
    }

    #[test]
    fn lookup_orders_partial_matches_by_reuse_bytes() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        // Three cached results overlapping the probe [0, 100) by different
        // amounts.
        ds.insert(QueryId(1), spec(90, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 10 bytes reuse
        ds.insert(QueryId(2), spec(40, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 60 bytes
        ds.insert(QueryId(3), spec(70, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 30 bytes
        let probe = spec(0, 100, 1);
        let ms = ds.lookup(&probe);
        assert_eq!(ms.len(), 3);
        let producers: Vec<QueryId> = ms.iter().map(|m| m.producer).collect();
        assert_eq!(producers, vec![QueryId(2), QueryId(3), QueryId(1)]);
        assert_eq!(ds.stats().partial_hits, 1);
    }

    #[test]
    fn lookup_puts_exact_match_first() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 200, 1), 200, Payload::Virtual, &mut ev)
            .unwrap(); // superset, large reuse
        ds.insert(QueryId(2), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // exact
        let ms = ds.lookup(&spec(0, 100, 1));
        assert_eq!(ms[0].producer, QueryId(2));
        assert_eq!(ms[0].overlap, 1.0);
        assert_eq!(ds.stats().exact_hits, 1);
    }

    #[test]
    fn lookup_miss_counts() {
        let ds = store(1000);
        assert!(ds.lookup(&spec(0, 10, 1)).is_empty());
        assert_eq!(ds.stats().misses, 1);
    }

    #[test]
    fn abort_releases_reservation() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let b = ds
            .malloc(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        ds.abort(b);
        assert_eq!(ds.used(), 0);
        assert!(ds.malloc(QueryId(2), spec(0, 100, 1), 100, &mut ev).is_ok());
    }

    #[test]
    #[should_panic(expected = "double commit")]
    fn double_commit_panics() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let b = ds.malloc(QueryId(1), spec(0, 10, 1), 10, &mut ev).unwrap();
        ds.commit(b, Payload::Virtual);
        ds.commit(b, Payload::Virtual);
    }

    #[test]
    fn eviction_cascade_frees_enough_for_large_alloc() {
        let mut ds = store(300);
        let mut ev = Vec::new();
        for i in 0..3 {
            ds.insert(
                QueryId(i),
                spec(i * 1000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        }
        ds.insert(
            QueryId(9),
            spec(9000, 250, 1),
            250,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 3);
        assert_eq!(ds.used(), 250);
        assert_eq!(ds.stats().bytes_evicted, 300);
    }

    #[test]
    fn reserve_subscribable_discoverable_but_invisible() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds
            .reserve_subscribable(QueryId(1), s.clone(), 100, &mut ev)
            .unwrap();
        // Invisible to the normal lookup path...
        assert!(ds.lookup_exact(&s).is_none());
        // ...but discoverable by graft probes, exact first.
        let cands = ds.lookup_subscribable(&s);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].exact);
        assert_eq!(cands[0].producer, QueryId(1));
        // Partial probe: half of [50,150) comes from the in-flight entry.
        let partial = ds.lookup_subscribable(&spec(50, 100, 1));
        assert_eq!(partial.len(), 1);
        assert!(!partial[0].exact);
        assert_eq!(partial[0].reuse_bytes, 50);
        // Publish: graft probes stop matching, normal lookups start.
        ds.commit(blob, Payload::Virtual);
        assert!(ds.lookup_subscribable(&s).is_empty());
        assert!(ds.lookup_exact(&s).is_some());
    }

    #[test]
    fn subscribable_reservation_protected_from_eviction() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        ds.reserve_subscribable(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
    }

    #[test]
    fn subscription_blocks_eviction_until_released() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds
            .reserve_subscribable(QueryId(1), s.clone(), 100, &mut ev)
            .unwrap();
        assert_eq!(ds.subscribe(blob), Some(Phase::Subscribable));
        ds.commit(blob, Payload::Virtual);
        // Published but still subscribed: the entry must survive pressure.
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
        ds.unsubscribe(blob);
        assert!(ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev).is_ok());
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn abort_of_subscribable_reservation_kills_subscriptions() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let blob = ds
            .reserve_subscribable(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        assert_eq!(ds.subscribe(blob), Some(Phase::Subscribable));
        ds.abort(blob);
        assert!(ds.get(blob).is_none());
        assert_eq!(ds.subscribe(blob), None, "dead blob is not graftable");
        ds.unsubscribe(blob); // no-op, must not panic
        assert_eq!(ds.used(), 0);
    }

    #[test]
    fn has_equivalent_is_a_pure_probe() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        assert!(!ds.has_equivalent(&s));
        ds.insert(QueryId(1), s.clone(), 100, Payload::Virtual, &mut ev)
            .unwrap();
        let before = ds.stats();
        assert!(ds.has_equivalent(&s));
        assert!(!ds.has_equivalent(&spec(500, 10, 1)));
        assert_eq!(ds.stats(), before, "no hit/miss accounting");
    }

    #[test]
    fn lookup_subscribable_orders_exact_then_bytes() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        ds.reserve_subscribable(QueryId(1), spec(40, 100, 1), 100, &mut ev)
            .unwrap(); // 60 bytes reuse for probe [0,100)
        ds.reserve_subscribable(QueryId(2), spec(0, 100, 1), 100, &mut ev)
            .unwrap(); // exact
        ds.reserve_subscribable(QueryId(3), spec(90, 100, 1), 100, &mut ev)
            .unwrap(); // 10 bytes
        let cands = ds.lookup_subscribable(&spec(0, 100, 1));
        let producers: Vec<QueryId> = cands.iter().map(|c| c.producer).collect();
        assert_eq!(producers, vec![QueryId(2), QueryId(1), QueryId(3)]);
        assert!(cands[0].exact && !cands[1].exact);
    }

    #[test]
    fn used_accounting_tracks_remove() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let b = ds
            .insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        assert_eq!(ds.used(), 100);
        assert_eq!(ds.len(), 1);
        ds.remove(b);
        assert_eq!(ds.used(), 0);
        assert!(ds.is_empty());
    }
}
