//! The Data Store Manager (paper §2, "Data Store Manager").
//!
//! A semantic cache: buffer space for intermediate results tagged with
//! predicate metadata, so that results of finished queries can answer (or
//! partially answer) queries submitted later. Provides the paper's
//! `malloc`-style two-phase allocation (space is reserved and metadata
//! recorded while the producing query executes; the blob becomes visible to
//! `lookup` once committed) and byte-budgeted eviction, which reports the
//! evicted producers so the engine can mark them SWAPPED_OUT in the
//! scheduling graph.

use crate::entry::{BlobEntry, EntryState, Payload, Phase};
use std::collections::HashMap;
use vmqs_core::sync::atomic::{AtomicU64, Ordering};
use vmqs_core::{BlobId, QueryId, QuerySpec};

/// One eviction reported back to the caller: the evicted blob, the query
/// that produced it (to be marked SWAPPED_OUT in the scheduling graph),
/// and the victim's predicate — the sharded engine derives the
/// producer's home shard from the spec, so the eviction can be applied
/// under that shard's lock without a global map.
///
/// Spills (FULL → RESTORABLE) are *not* evictions: a spilled entry still
/// answers exact lookups, so its producer stays CACHED in the graph.
/// Only drops that lose the data — from tier 1, or from the tier-2 spill
/// store — produce a record.
#[derive(Clone, Debug)]
pub struct EvictionRecord<S> {
    /// The evicted blob.
    pub blob: BlobId,
    /// The query that produced it.
    pub producer: QueryId,
    /// The victim's predicate (shard routing and spatial-index removal).
    pub spec: S,
    /// Tier the data was dropped from: `1` = in-memory, `2` = spill store.
    pub tier: u8,
    /// The victim's benefit-per-byte score at eviction time (see
    /// [`benefit_score`]; `0` for entries that never got a costed commit).
    pub score: f64,
}

/// Which ready, unpinned blob to evict first when space is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used first (default; what a buffer manager would do).
    Lru,
    /// Largest blob first (frees space fastest).
    LargestFirst,
    /// Most recently used first (pessimal for locality; ablation baseline).
    Mru,
    /// Benefit-aware (DESIGN.md §14): evict the entry with the smallest
    /// [`benefit_score`] — recomputation cost × observed reuse per byte —
    /// i.e. the greedy knapsack approximation of keeping the set of
    /// entries whose retention saves the most recomputation per byte of
    /// budget. Costed inserts additionally run admission control: a new
    /// entry whose score cannot beat the victim it would displace is
    /// rejected instead of churning the cache.
    CostBased,
}

/// Floor on the cost factor of the benefit score, so entries that were
/// committed before any cost measurement (legacy `insert`/`commit`) still
/// order deterministically by reuse and size instead of collapsing to 0.
const COST_FLOOR: f64 = 1e-9;

/// The benefit-per-byte eviction score of [`EvictionPolicy::CostBased`]
/// (DESIGN.md §14): `cost × (1 + hits) / size`, where `cost` is the
/// measured recomputation cost in (possibly virtual) seconds, `hits` the
/// observed reuse count, and `size` the entry's bytes. One byte of budget
/// spent on this entry is expected to save this many seconds of
/// recomputation. Higher is more worth keeping.
pub fn benefit_score(cost: f64, hits: u64, size: u64) -> f64 {
    (cost.max(COST_FLOOR) * (1.0 + hits as f64)) / size.max(1) as f64
}

/// A spill handed back to the caller by an eviction pass: the entry has
/// transitioned FULL → RESTORABLE and its payload has been detached. The
/// threaded engine must persist the payload to the tier-2 store *before*
/// releasing its write lock (so no other thread can observe a RESTORABLE
/// entry whose on-disk copy does not exist yet); the simulator only
/// counts it.
#[derive(Clone, Debug)]
pub struct SpillRequest<S> {
    /// The spilled blob (also the tier-2 storage key).
    pub blob: BlobId,
    /// The query that produced it (for `Spilled` event attribution).
    pub producer: QueryId,
    /// The entry's predicate — serialized into the spill frame's metadata
    /// block so a cold restart can re-index the frame (DESIGN.md §15).
    pub spec: S,
    /// Payload bytes moved to tier 2.
    pub size: u64,
    /// The detached payload to serialize ([`Payload::Virtual`] in the
    /// simulator).
    pub payload: Payload,
}

/// Sentinel producer id for entries adopted from a recovered spill frame
/// ([`DataStore::adopt_restorable`]): the query that originally produced
/// the frame belonged to a previous process and is in no graph.
pub const RECOVERED_PRODUCER: QueryId = QueryId(u64::MAX);

/// An in-flight entry a query could graft onto (DESIGN.md §13): returned
/// by [`DataStore::lookup_subscribable`].
#[derive(Clone, Debug)]
pub struct GraftCandidate {
    /// The SUBSCRIBABLE blob.
    pub blob: BlobId,
    /// The query currently producing it.
    pub producer: QueryId,
    /// `cmp(entry.spec, probe)` — the published result will answer the
    /// probe completely.
    pub exact: bool,
    /// `overlap(entry.spec, probe)` in `[0, 1]`.
    pub overlap: f64,
    /// `overlap · qoutsize(entry.spec)` — reusable bytes once published.
    pub reuse_bytes: u64,
}

/// A partial-reuse lookup result.
#[derive(Clone, Debug)]
pub struct Match {
    /// The matching blob.
    pub blob: BlobId,
    /// The producer query of the blob.
    pub producer: QueryId,
    /// `overlap(blob.spec, probe)` in `[0, 1]`.
    pub overlap: f64,
    /// `overlap · qoutsize(blob.spec)` — reusable bytes.
    pub reuse_bytes: u64,
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsStats {
    /// Lookups answered completely by one cached blob (`cmp` true).
    pub exact_hits: u64,
    /// Lookups with at least one nonzero-overlap match (but no exact hit).
    pub partial_hits: u64,
    /// Lookups with no usable match.
    pub misses: u64,
    /// Blobs committed.
    pub committed: u64,
    /// Blobs evicted to make room.
    pub evicted: u64,
    /// Bytes freed by eviction.
    pub bytes_evicted: u64,
    /// Allocations rejected because the blob exceeds the whole budget (or
    /// pinned entries prevent freeing enough space).
    pub rejected: u64,
    /// Entries demoted to the tier-2 spill store instead of dropped.
    pub spilled: u64,
    /// Bytes moved to tier 2.
    pub bytes_spilled: u64,
    /// Entries re-heated from tier 2 back into memory.
    pub restored: u64,
    /// Bytes restored from tier 2.
    pub bytes_restored: u64,
    /// Tier-2 entries dropped because a restore failed (I/O error or
    /// poisoned read) — the caller fell back to recomputation.
    pub restore_failures: u64,
    /// Costed inserts refused by cost-based admission control (their
    /// benefit score could not beat the would-be victim's).
    pub unprofitable: u64,
    /// RESTORABLE entries adopted from recovered spill frames at startup
    /// (DESIGN.md §15).
    pub adopted: u64,
}

/// Error returned by [`DataStore::malloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DsError {
    /// The requested size can never fit (larger than the total budget, or
    /// caching is disabled with a zero budget).
    TooLarge,
    /// Enough bytes exist but are held by uncommitted (pinned) entries.
    Busy,
    /// Cost-based admission refused the entry: its benefit-per-byte score
    /// cannot beat the victim it would displace, and displacement would
    /// lose the victim's data (DESIGN.md §14).
    Unprofitable,
}

impl std::fmt::Display for DsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsError::TooLarge => write!(f, "allocation exceeds data store budget"),
            DsError::Busy => write!(f, "data store space held by uncommitted entries"),
            DsError::Unprofitable => {
                write!(
                    f,
                    "entry's benefit score cannot beat the current victim set"
                )
            }
        }
    }
}

impl std::error::Error for DsError {}

/// Hit/miss and eviction counters kept in atomics so the read-side API
/// (`lookup*`, `touch`, `stats`) works through `&self`: the threaded
/// server holds only a read lock on the store for the per-query lookup
/// hot path. All counters use relaxed ordering — they are statistics,
/// not synchronization.
#[derive(Debug, Default)]
struct StatCells {
    exact_hits: AtomicU64,
    partial_hits: AtomicU64,
    misses: AtomicU64,
    committed: AtomicU64,
    evicted: AtomicU64,
    bytes_evicted: AtomicU64,
    rejected: AtomicU64,
    spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    restored: AtomicU64,
    bytes_restored: AtomicU64,
    restore_failures: AtomicU64,
    unprofitable: AtomicU64,
    adopted: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> DsStats {
        DsStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            bytes_restored: self.bytes_restored.load(Ordering::Relaxed),
            restore_failures: self.restore_failures.load(Ordering::Relaxed),
            unprofitable: self.unprofitable.load(Ordering::Relaxed),
            adopted: self.adopted.load(Ordering::Relaxed),
        }
    }
}

/// The Data Store Manager.
///
/// Structural mutation (`malloc`/`commit`/`insert`/`remove`) requires
/// `&mut self`; the read side (`lookup*`, `touch`, `stats`) takes `&self`
/// with LRU stamps and counters in atomics, so the threaded server can
/// serve many concurrent lookups under a shared read lock and take the
/// write lock only to admit or evict.
#[derive(Debug)]
pub struct DataStore<S: QuerySpec> {
    budget: u64,
    used: u64,
    /// Tier-2 spill budget in bytes; `0` disables the spill tier and every
    /// eviction drops its victim as before.
    tier2_budget: u64,
    /// Bytes of RESTORABLE entries currently charged to tier 2.
    tier2_used: u64,
    /// Spills produced by eviction passes since the last
    /// [`DataStore::take_pending_spills`]; the engine must drain and
    /// persist these before releasing structural exclusivity.
    pending_spills: Vec<SpillRequest<S>>,
    entries: HashMap<BlobId, BlobEntry<S>>,
    next_blob: u64,
    clock: AtomicU64,
    policy: EvictionPolicy,
    stats: StatCells,
}

impl<S: QuerySpec> DataStore<S> {
    /// Creates a store with the given byte budget. A budget of `0` disables
    /// caching entirely (every `malloc` is rejected) — used by the paper's
    /// caching-on/off experiment.
    pub fn new(budget: u64) -> Self {
        Self::with_policy(budget, EvictionPolicy::Lru)
    }

    /// Creates a store with an explicit eviction policy.
    pub fn with_policy(budget: u64, policy: EvictionPolicy) -> Self {
        DataStore {
            budget,
            used: 0,
            tier2_budget: 0,
            tier2_used: 0,
            pending_spills: Vec::new(),
            entries: HashMap::new(),
            next_blob: 0,
            clock: AtomicU64::new(0),
            policy,
            stats: StatCells::default(),
        }
    }

    /// Builder: enables the tier-2 spill store with the given byte budget
    /// (`0` keeps it disabled). Eviction victims then demote to RESTORABLE
    /// instead of dropping, until tier 2 itself overflows.
    pub fn with_tier2(mut self, budget: u64) -> Self {
        self.tier2_budget = budget;
        self
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently allocated (committed + uncommitted).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured tier-2 spill budget (`0` = spilling disabled).
    pub fn tier2_budget(&self) -> u64 {
        self.tier2_budget
    }

    /// Bytes currently held by RESTORABLE entries in tier 2.
    pub fn tier2_used(&self) -> u64 {
        self.tier2_used
    }

    /// Drains the spills produced by eviction passes since the last call.
    /// The threaded engine persists each payload to the tier-2 store
    /// *within the same write-lock critical section* that produced it;
    /// the simulator charges no write latency (spill writes are modeled
    /// as off the critical path) and simply drops the requests.
    pub fn take_pending_spills(&mut self) -> Vec<SpillRequest<S>> {
        std::mem::take(&mut self.pending_spills)
    }

    /// Number of entries (committed + uncommitted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DsStats {
        self.stats.snapshot()
    }

    /// Reserves `size` bytes for the result of `producer` described by
    /// `spec` (the paper's `malloc` with its accumulator meta-data object).
    ///
    /// Evicts ready blobs per the eviction policy until the reservation
    /// fits; evicted producers are appended to `evicted` so the caller can
    /// transition them to SWAPPED_OUT in the scheduling graph. The new entry
    /// is invisible to lookups until [`DataStore::commit`].
    pub fn malloc(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        self.malloc_scored(producer, spec, size, None, evicted)
    }

    /// [`DataStore::malloc`] with an admission score: when the policy is
    /// [`EvictionPolicy::CostBased`] and making room would *lose* a
    /// victim's data (spilling disabled, so eviction means dropping), an
    /// incoming entry whose benefit score cannot beat that victim's is
    /// refused with [`DsError::Unprofitable`] instead of churning the
    /// cache. Reservations pass `None` (their cost is unknown until the
    /// producer finishes) and are always admitted.
    fn malloc_scored(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        incoming_score: Option<f64>,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        if size > self.budget {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(DsError::TooLarge);
        }
        while self.used + size > self.budget {
            match self.pick_victim() {
                Some(victim) => {
                    let vscore = self.entries[&victim].score();
                    if let (EvictionPolicy::CostBased, Some(inc)) = (self.policy, incoming_score) {
                        // Spilling preserves the victim's data, so the
                        // knapsack trade is free; only a lossy drop has
                        // to be won on score.
                        if self.tier2_budget == 0 && vscore >= inc {
                            self.stats.unprofitable.fetch_add(1, Ordering::Relaxed);
                            return Err(DsError::Unprofitable);
                        }
                    }
                    self.evict_or_spill(victim, evicted);
                }
                None => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(DsError::Busy);
                }
            }
        }
        let id = BlobId(self.next_blob);
        self.next_blob += 1;
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.entries.insert(
            id,
            BlobEntry {
                id,
                producer,
                spec,
                size,
                payload: Payload::Virtual,
                state: EntryState::new(),
                last_access: AtomicU64::new(now),
                cost: 0.0,
                hits: AtomicU64::new(0),
            },
        );
        self.used += size;
        Ok(id)
    }

    /// Demotes `victim` to the tier-2 spill store when one is configured
    /// and the entry's state machine allows it (no pins, no
    /// subscriptions); otherwise drops it as a tier-1 eviction. Tier-2
    /// overflow then drops the lowest-scoring RESTORABLE entries.
    fn evict_or_spill(&mut self, victim: BlobId, evicted: &mut Vec<EvictionRecord<S>>) {
        if self.tier2_budget > 0 && self.entries[&victim].state.try_spill() {
            let e = self.entries.get_mut(&victim).expect("victim exists");
            let payload = std::mem::replace(&mut e.payload, Payload::Virtual);
            let (size, producer, spec) = (e.size, e.producer, e.spec.clone());
            self.used -= size;
            self.tier2_used += size;
            self.stats.spilled.fetch_add(1, Ordering::Relaxed);
            self.stats.bytes_spilled.fetch_add(size, Ordering::Relaxed);
            self.pending_spills.push(SpillRequest {
                blob: victim,
                producer,
                spec,
                size,
                payload,
            });
            self.shrink_tier2(None, evicted);
        } else {
            let score = self.entries[&victim].score();
            let e = self.remove(victim).expect("victim exists");
            // The entry is out of the map; mark it so any clone
            // or late reader holding a pin attempt sees
            // SWAPPED_OUT instead of a stale FULL.
            e.state.force_swap_out();
            self.stats.evicted.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_evicted
                .fetch_add(e.size, Ordering::Relaxed);
            evicted.push(EvictionRecord {
                blob: e.id,
                producer: e.producer,
                spec: e.spec,
                tier: 1,
                score,
            });
        }
    }

    /// Drops the lowest-scoring RESTORABLE entries until tier 2 fits its
    /// budget again, skipping `protect` (the entry currently being
    /// restored). Ties break on the oldest stamp, then the lowest blob
    /// id, so the victim sequence is deterministic.
    fn shrink_tier2(&mut self, protect: Option<BlobId>, evicted: &mut Vec<EvictionRecord<S>>) {
        while self.tier2_used > self.tier2_budget {
            let victim = self
                .entries
                .values()
                .filter(|e| e.state.is_restorable() && Some(e.id) != protect)
                .min_by(|a, b| {
                    a.score()
                        .total_cmp(&b.score())
                        .then_with(|| {
                            a.last_access
                                .load(Ordering::Relaxed)
                                .cmp(&b.last_access.load(Ordering::Relaxed))
                        })
                        .then_with(|| a.id.cmp(&b.id))
                })
                .map(|e| e.id);
            match victim {
                Some(v) => {
                    let score = self.entries[&v].score();
                    // The payload may still sit in the pending-spill
                    // queue (spilled and dropped within one eviction
                    // pass): cancel the write so no orphan file appears.
                    self.pending_spills.retain(|p| p.blob != v);
                    let e = self.remove(v).expect("victim exists");
                    e.state.force_swap_out();
                    self.stats.evicted.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .bytes_evicted
                        .fetch_add(e.size, Ordering::Relaxed);
                    evicted.push(EvictionRecord {
                        blob: e.id,
                        producer: e.producer,
                        spec: e.spec,
                        tier: 2,
                        score,
                    });
                }
                None => break,
            }
        }
    }

    /// Publishes a previously `malloc`ed blob with its final payload; it is
    /// now visible to lookups and eligible for eviction.
    pub fn commit(&mut self, blob: BlobId, payload: Payload) {
        let e = self
            .entries
            .get_mut(&blob)
            .unwrap_or_else(|| panic!("commit of unknown blob {blob}"));
        if let Some(len) = payload.len() {
            debug_assert_eq!(
                len as u64, e.size,
                "committed payload size differs from reservation"
            );
        }
        e.payload = payload;
        assert!(e.state.publish(), "double commit of {blob}");
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience: `malloc` + `commit` in one step (used by tests and by
    /// engines that compute results before caching them).
    pub fn insert(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let id = self.malloc(producer, spec, size, evicted)?;
        self.commit(id, payload);
        Ok(id)
    }

    /// [`DataStore::commit`] with the producer's measured recomputation
    /// cost (I/O + kernel seconds; virtual seconds in the simulator),
    /// which seeds the entry's benefit score.
    pub fn commit_costed(&mut self, blob: BlobId, payload: Payload, cost: f64) {
        self.commit(blob, payload);
        let e = self.entries.get_mut(&blob).expect("just committed");
        e.cost = if cost.is_finite() { cost.max(0.0) } else { 0.0 };
    }

    /// [`DataStore::insert`] with a measured recomputation cost: the
    /// costed entry runs cost-based admission control (see
    /// [`DsError::Unprofitable`]) and its benefit score starts from
    /// `cost` instead of the floor.
    pub fn insert_costed(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        cost: f64,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let score = benefit_score(cost, 0, size);
        let id = self.malloc_scored(producer, spec, size, Some(score), evicted)?;
        self.commit_costed(id, payload, cost);
        Ok(id)
    }

    /// Finds a RESTORABLE entry whose predicate `cmp`-matches `probe`
    /// exactly: a tier-2 hit the engine may re-heat at disk cost instead
    /// of recompute cost. Returns `(blob, producer, size)`; the lowest
    /// blob id wins so the choice is deterministic. Reads no stats and
    /// touches nothing — accounting happens at [`DataStore::restore`].
    ///
    /// Spilled entries answer *exact* probes only: partial reuse would
    /// require restoring before knowing whether the overlap is worth the
    /// disk read, so partial candidates are left to recomputation.
    pub fn lookup_restorable_exact(&self, probe: &S) -> Option<(BlobId, QueryId, u64)> {
        // lint:sorted: min over blob id; iteration order is irrelevant
        self.entries
            .values()
            .filter(|e| e.state.is_restorable() && e.spec.cmp(probe))
            .min_by_key(|e| e.id)
            .map(|e| (e.id, e.producer, e.size))
    }

    /// Re-heats a RESTORABLE entry: charges its bytes back to tier 1
    /// (evicting or spilling other entries to make room), attaches the
    /// payload re-read from the tier-2 store, and promotes the entry to
    /// FULL. Returns `false` when the entry no longer exists, is not
    /// RESTORABLE, or tier-1 space cannot be freed — including the corner
    /// where making room spills a victim past the tier-2 budget and the
    /// shrink drops *this* entry as the lowest-scoring RESTORABLE one.
    /// The caller falls back to recomputation in every `false` case.
    pub fn restore(
        &mut self,
        blob: BlobId,
        payload: Payload,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> bool {
        let size = match self.entries.get(&blob) {
            Some(e) if e.state.is_restorable() => e.size,
            _ => return false,
        };
        if size > self.budget {
            return false;
        }
        while self.used + size > self.budget {
            match self.pick_victim() {
                Some(victim) => self.evict_or_spill(victim, evicted),
                None => return false,
            }
        }
        // Making room may have spilled a victim past the tier-2 budget,
        // and the resulting shrink drops the lowest-scoring RESTORABLE
        // entry — possibly this one. Its eviction record is already in
        // `evicted`; fall back to recomputation.
        let Some(e) = self.entries.get_mut(&blob) else {
            return false;
        };
        debug_assert!(e.state.is_restorable(), "only shrink can touch it");
        e.payload = payload;
        let promoted = e.state.restore();
        debug_assert!(promoted, "exclusive access, phase checked above");
        self.tier2_used -= size;
        self.used += size;
        self.touch(blob);
        self.stats.restored.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_restored.fetch_add(size, Ordering::Relaxed);
        // Restoring may have spilled others past the tier-2 budget.
        self.shrink_tier2(Some(blob), evicted);
        true
    }

    /// Drops a RESTORABLE entry whose tier-2 read failed (I/O error or
    /// poisoned data): the entry is gone for good and the producer must
    /// be marked SWAPPED_OUT in the graph. Returns the eviction record,
    /// or `None` when the entry already vanished.
    pub fn drop_restorable(&mut self, blob: BlobId) -> Option<EvictionRecord<S>> {
        match self.entries.get(&blob) {
            Some(e) if e.state.is_restorable() => {}
            _ => return None,
        }
        let score = self.entries[&blob].score();
        self.pending_spills.retain(|p| p.blob != blob);
        let e = self.remove(blob).expect("checked above");
        e.state.force_swap_out();
        self.stats.evicted.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_evicted
            .fetch_add(e.size, Ordering::Relaxed);
        self.stats.restore_failures.fetch_add(1, Ordering::Relaxed);
        Some(EvictionRecord {
            blob: e.id,
            producer: e.producer,
            spec: e.spec,
            tier: 2,
            score,
        })
    }

    /// Adopts a spill frame recovered from a previous process as a
    /// RESTORABLE entry (DESIGN.md §15): the blob keeps its on-disk id
    /// (so the existing frame file stays its tier-2 key), the producer is
    /// the [`RECOVERED_PRODUCER`] sentinel (the original query belongs to
    /// a dead process and is in no graph), and its bytes are charged to
    /// tier 2. Returns `false` — and the caller deletes the frame — when
    /// the spill tier is disabled, the frame would overflow the tier-2
    /// budget, or the blob id is somehow already taken.
    pub fn adopt_restorable(&mut self, blob: BlobId, spec: S, size: u64) -> bool {
        if self.tier2_budget == 0
            || self.tier2_used + size > self.tier2_budget
            || self.entries.contains_key(&blob)
        {
            return false;
        }
        // Future allocations must never reuse an adopted id.
        self.next_blob = self.next_blob.max(blob.raw() + 1);
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let state = EntryState::new();
        let published = state.publish();
        let spilled = state.try_spill();
        debug_assert!(published && spilled, "fresh entry reaches RESTORABLE");
        self.entries.insert(
            blob,
            BlobEntry {
                id: blob,
                producer: RECOVERED_PRODUCER,
                spec,
                size,
                payload: Payload::Virtual,
                state,
                last_access: AtomicU64::new(now),
                cost: 0.0,
                hits: AtomicU64::new(0),
            },
        );
        self.tier2_used += size;
        self.stats.adopted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drops an uncommitted reservation (producing query aborted). The
    /// entry is marked SWAPPED_OUT before removal so a grafting consumer
    /// holding its [`BlobId`] (or a cloned entry) can never mistake it for
    /// in-flight.
    pub fn abort(&mut self, blob: BlobId) {
        if let Some(e) = self.entries.get(&blob) {
            assert!(!e.state.is_visible(), "abort of committed blob {blob}");
            e.state.force_swap_out();
            self.remove(blob);
        }
    }

    /// The graft-enabled `malloc`: reserves space like
    /// [`DataStore::malloc`] and immediately opens the entry to graft
    /// subscriptions (phase SUBSCRIBABLE). The entry stays invisible to
    /// lookups and protected from eviction until [`DataStore::commit`]
    /// publishes it, but overlapping queries can already discover it via
    /// [`DataStore::lookup_subscribable`] and subscribe.
    pub fn reserve_subscribable(
        &mut self,
        producer: QueryId,
        spec: S,
        size: u64,
        evicted: &mut Vec<EvictionRecord<S>>,
    ) -> Result<BlobId, DsError> {
        let blob = self.malloc(producer, spec, size, evicted)?;
        let opened = self.entries[&blob].state.make_subscribable();
        debug_assert!(opened, "fresh reservation must be ACCUMULATING");
        Ok(blob)
    }

    /// Finds in-flight SUBSCRIBABLE entries whose eventual result can
    /// answer `probe` completely (`cmp`) or partially (`overlap > 0`).
    /// Exact candidates first, then by descending reusable bytes, then
    /// blob id. Reads no stats and touches nothing: grafting decisions
    /// must not perturb LRU or hit-rate accounting.
    pub fn lookup_subscribable(&self, probe: &S) -> Vec<GraftCandidate> {
        let mut out: Vec<GraftCandidate> = Vec::new();
        // lint:sorted: result sorted below; iteration order is irrelevant
        for e in self.entries.values() {
            if e.state.phase() != Phase::Subscribable {
                continue;
            }
            let exact = e.spec.cmp(probe);
            let ov = if exact { 1.0 } else { e.spec.overlap(probe) };
            if !exact && ov <= 0.0 {
                continue;
            }
            out.push(GraftCandidate {
                blob: e.id,
                producer: e.producer,
                exact,
                overlap: ov,
                reuse_bytes: if exact {
                    e.spec.qoutsize()
                } else {
                    e.spec.reuse_bytes(probe)
                },
            });
        }
        out.sort_by(|a, b| {
            b.exact
                .cmp(&a.exact)
                .then(b.reuse_bytes.cmp(&a.reuse_bytes))
                .then(a.blob.cmp(&b.blob))
        });
        out
    }

    /// Attaches a graft subscription to `blob` (see
    /// [`EntryState::subscribe`]). `None` when the blob no longer exists.
    pub fn subscribe(&self, blob: BlobId) -> Option<Phase> {
        self.entries.get(&blob).map(|e| e.state.subscribe())
    }

    /// Releases a subscription on `blob`. A no-op when the entry was
    /// already aborted/removed (its state machine died with it).
    pub fn unsubscribe(&self, blob: BlobId) {
        if let Some(e) = self.entries.get(&blob) {
            e.state.unsubscribe();
        }
    }

    /// True when a *visible* cached entry `cmp`-matches `probe`. Unlike
    /// [`DataStore::lookup_exact`] this reads no stats and touches no LRU
    /// stamp — it is the duplicate-full-compute detector, a pure probe.
    pub fn has_equivalent(&self, probe: &S) -> bool {
        self.entries
            .values()
            .any(|e| e.visible() && e.spec.cmp(probe))
    }

    /// Looks up a blob whose predicate `cmp`-matches `probe` exactly
    /// (complete reuse). Touches the blob for LRU on hit. Updates hit/miss
    /// statistics; callers interested in partial reuse should use
    /// [`DataStore::lookup`] instead, which checks both.
    pub fn lookup_exact(&self, probe: &S) -> Option<Match> {
        let hit = self
            .entries
            .values()
            .filter(|e| e.visible())
            .find(|e| e.spec.cmp(probe))
            .map(|e| (e.id, e.producer, e.spec.qoutsize()));
        match hit {
            Some((id, producer, size)) => {
                self.touch(id);
                self.stats.exact_hits.fetch_add(1, Ordering::Relaxed);
                Some(Match {
                    blob: id,
                    producer,
                    overlap: 1.0,
                    reuse_bytes: size,
                })
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The paper's `lookup`: finds cached results that can answer `probe`
    /// completely or partially. Returns matches sorted by descending
    /// reusable bytes; an exact (`cmp`) match, if any, is always first with
    /// `overlap == 1.0`. Touches every returned blob.
    pub fn lookup(&self, probe: &S) -> Vec<Match> {
        self.lookup_filtered(probe, None)
    }

    /// Like [`DataStore::lookup`], but restricted to `candidates` when
    /// given — the hook used by the Index Manager's spatially indexed
    /// store, which can prove all other blobs have zero overlap.
    pub fn lookup_filtered(&self, probe: &S, candidates: Option<&[BlobId]>) -> Vec<Match> {
        let mut matches: Vec<Match> = Vec::new();
        let mut exact: Option<Match> = None;
        let candidate_entries: Vec<&BlobEntry<S>> = match candidates {
            Some(ids) => ids
                .iter()
                .filter_map(|id| self.entries.get(id))
                .filter(|e| e.visible())
                .collect(),
            None => self.entries.values().filter(|e| e.visible()).collect(),
        };
        for e in candidate_entries {
            if exact.is_none() && e.spec.cmp(probe) {
                exact = Some(Match {
                    blob: e.id,
                    producer: e.producer,
                    overlap: 1.0,
                    reuse_bytes: e.spec.qoutsize(),
                });
                continue;
            }
            let ov = e.spec.overlap(probe);
            if ov > 0.0 {
                matches.push(Match {
                    blob: e.id,
                    producer: e.producer,
                    overlap: ov,
                    reuse_bytes: e.spec.reuse_bytes(probe),
                });
            }
        }
        matches.sort_by(|a, b| b.reuse_bytes.cmp(&a.reuse_bytes).then(a.blob.cmp(&b.blob)));
        if let Some(x) = exact {
            matches.insert(0, x);
            self.stats.exact_hits.fetch_add(1, Ordering::Relaxed);
        } else if !matches.is_empty() {
            self.stats.partial_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        for m in &matches {
            self.touch(m.blob);
        }
        matches
    }

    /// Reads an entry.
    pub fn get(&self, blob: BlobId) -> Option<&BlobEntry<S>> {
        self.entries.get(&blob)
    }

    /// Marks a blob as used now (LRU bookkeeping) and counts one observed
    /// reuse toward its benefit score.
    pub fn touch(&self, blob: BlobId) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = self.entries.get(&blob) {
            e.last_access.store(now, Ordering::Relaxed);
            e.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes an entry, releasing its bytes (from tier 2 when the entry
    /// is RESTORABLE, from tier 1 otherwise); returns it.
    pub fn remove(&mut self, blob: BlobId) -> Option<BlobEntry<S>> {
        let e = self.entries.remove(&blob)?;
        if e.state.is_restorable() {
            self.tier2_used -= e.size;
        } else {
            self.used -= e.size;
        }
        Some(e)
    }

    /// Iterates over all visible entries (test/diagnostic aid).
    pub fn iter_visible(&self) -> impl Iterator<Item = &BlobEntry<S>> {
        self.entries.values().filter(|e| e.visible())
    }

    fn pick_victim(&self) -> Option<BlobId> {
        // Entries with live graft subscriptions are as good as pinned: a
        // consumer is committed to reading them the moment they publish.
        let candidates = self
            .entries
            .values()
            .filter(|e| e.visible() && e.state.subscribers() == 0);
        let stamp = |e: &BlobEntry<S>| e.last_access.load(Ordering::Relaxed);
        match self.policy {
            EvictionPolicy::Lru => candidates.min_by_key(|e| stamp(e)).map(|e| e.id),
            EvictionPolicy::Mru => candidates.max_by_key(|e| stamp(e)).map(|e| e.id),
            EvictionPolicy::LargestFirst => candidates
                .max_by_key(|e| (e.size, u64::MAX - stamp(e)))
                .map(|e| e.id),
            // Greedy knapsack: sacrifice the entry whose retention saves
            // the least recomputation per byte. `total_cmp` plus the
            // stamp/id tie-breaks give a deterministic total order, so
            // the victim sequence is reproducible bit for bit.
            EvictionPolicy::CostBased => candidates
                .min_by(|a, b| {
                    a.score()
                        .total_cmp(&b.score())
                        .then_with(|| stamp(a).cmp(&stamp(b)))
                        .then_with(|| a.id.cmp(&b.id))
                })
                .map(|e| e.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::spec::testutil::IntervalSpec;

    fn spec(start: u64, len: u64, scale: u64) -> IntervalSpec {
        IntervalSpec::new(start, len, scale)
    }

    fn store(budget: u64) -> DataStore<IntervalSpec> {
        DataStore::new(budget)
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        ds.insert(QueryId(1), s.clone(), 100, Payload::Virtual, &mut ev)
            .unwrap();
        assert!(ev.is_empty());
        let m = ds.lookup_exact(&s).unwrap();
        assert_eq!(m.overlap, 1.0);
        assert_eq!(m.producer, QueryId(1));
        assert!(ds.lookup_exact(&spec(999, 5, 1)).is_none());
        assert_eq!(ds.stats().exact_hits, 1);
        assert_eq!(ds.stats().misses, 1);
    }

    #[test]
    fn uncommitted_blobs_invisible_and_unevictable() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds.malloc(QueryId(1), s.clone(), 100, &mut ev).unwrap();
        assert!(ds.lookup_exact(&s).is_none());
        // A second allocation cannot evict the uncommitted one.
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
        ds.commit(blob, Payload::Virtual);
        assert!(ds.lookup_exact(&s).is_some());
        // Now eviction is possible.
        assert!(ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev).is_ok());
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].blob, ev[0].producer), (blob, QueryId(1)));
        assert_eq!(ev[0].spec, s, "eviction record carries the victim's spec");
        assert_eq!(ev[0].tier, 1, "no spill tier configured");
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut ds = store(0);
        let mut ev = Vec::new();
        assert_eq!(
            ds.insert(QueryId(1), spec(0, 10, 1), 10, Payload::Virtual, &mut ev),
            Err(DsError::TooLarge)
        );
        assert_eq!(ds.stats().rejected, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut ds = store(300);
        let mut ev = Vec::new();
        let a = ds
            .insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        let _b = ds
            .insert(
                QueryId(2),
                spec(1000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        let _c = ds
            .insert(
                QueryId(3),
                spec(2000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        // Touch a so b becomes the LRU victim.
        ds.touch(a);
        ds.insert(
            QueryId(4),
            spec(3000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(2));
        assert_eq!(ds.used(), 300);
    }

    #[test]
    fn largest_first_evicts_biggest() {
        let mut ds: DataStore<IntervalSpec> =
            DataStore::with_policy(300, EvictionPolicy::LargestFirst);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 200, 1), 200, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(QueryId(2), spec(1000, 50, 1), 50, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(1));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let mut ds: DataStore<IntervalSpec> = DataStore::with_policy(200, EvictionPolicy::Mru);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.insert(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev[0].producer, QueryId(2));
    }

    #[test]
    fn lookup_orders_partial_matches_by_reuse_bytes() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        // Three cached results overlapping the probe [0, 100) by different
        // amounts.
        ds.insert(QueryId(1), spec(90, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 10 bytes reuse
        ds.insert(QueryId(2), spec(40, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 60 bytes
        ds.insert(QueryId(3), spec(70, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // 30 bytes
        let probe = spec(0, 100, 1);
        let ms = ds.lookup(&probe);
        assert_eq!(ms.len(), 3);
        let producers: Vec<QueryId> = ms.iter().map(|m| m.producer).collect();
        assert_eq!(producers, vec![QueryId(2), QueryId(3), QueryId(1)]);
        assert_eq!(ds.stats().partial_hits, 1);
    }

    #[test]
    fn lookup_puts_exact_match_first() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 200, 1), 200, Payload::Virtual, &mut ev)
            .unwrap(); // superset, large reuse
        ds.insert(QueryId(2), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap(); // exact
        let ms = ds.lookup(&spec(0, 100, 1));
        assert_eq!(ms[0].producer, QueryId(2));
        assert_eq!(ms[0].overlap, 1.0);
        assert_eq!(ds.stats().exact_hits, 1);
    }

    #[test]
    fn lookup_miss_counts() {
        let ds = store(1000);
        assert!(ds.lookup(&spec(0, 10, 1)).is_empty());
        assert_eq!(ds.stats().misses, 1);
    }

    #[test]
    fn abort_releases_reservation() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let b = ds
            .malloc(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        ds.abort(b);
        assert_eq!(ds.used(), 0);
        assert!(ds.malloc(QueryId(2), spec(0, 100, 1), 100, &mut ev).is_ok());
    }

    #[test]
    #[should_panic(expected = "double commit")]
    fn double_commit_panics() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let b = ds.malloc(QueryId(1), spec(0, 10, 1), 10, &mut ev).unwrap();
        ds.commit(b, Payload::Virtual);
        ds.commit(b, Payload::Virtual);
    }

    #[test]
    fn eviction_cascade_frees_enough_for_large_alloc() {
        let mut ds = store(300);
        let mut ev = Vec::new();
        for i in 0..3 {
            ds.insert(
                QueryId(i),
                spec(i * 1000, 100, 1),
                100,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        }
        ds.insert(
            QueryId(9),
            spec(9000, 250, 1),
            250,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 3);
        assert_eq!(ds.used(), 250);
        assert_eq!(ds.stats().bytes_evicted, 300);
    }

    #[test]
    fn reserve_subscribable_discoverable_but_invisible() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds
            .reserve_subscribable(QueryId(1), s.clone(), 100, &mut ev)
            .unwrap();
        // Invisible to the normal lookup path...
        assert!(ds.lookup_exact(&s).is_none());
        // ...but discoverable by graft probes, exact first.
        let cands = ds.lookup_subscribable(&s);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].exact);
        assert_eq!(cands[0].producer, QueryId(1));
        // Partial probe: half of [50,150) comes from the in-flight entry.
        let partial = ds.lookup_subscribable(&spec(50, 100, 1));
        assert_eq!(partial.len(), 1);
        assert!(!partial[0].exact);
        assert_eq!(partial[0].reuse_bytes, 50);
        // Publish: graft probes stop matching, normal lookups start.
        ds.commit(blob, Payload::Virtual);
        assert!(ds.lookup_subscribable(&s).is_empty());
        assert!(ds.lookup_exact(&s).is_some());
    }

    #[test]
    fn subscribable_reservation_protected_from_eviction() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        ds.reserve_subscribable(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
    }

    #[test]
    fn subscription_blocks_eviction_until_released() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        let blob = ds
            .reserve_subscribable(QueryId(1), s.clone(), 100, &mut ev)
            .unwrap();
        assert_eq!(ds.subscribe(blob), Some(Phase::Subscribable));
        ds.commit(blob, Payload::Virtual);
        // Published but still subscribed: the entry must survive pressure.
        assert_eq!(
            ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev),
            Err(DsError::Busy)
        );
        ds.unsubscribe(blob);
        assert!(ds.malloc(QueryId(2), spec(200, 50, 1), 50, &mut ev).is_ok());
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn abort_of_subscribable_reservation_kills_subscriptions() {
        let mut ds = store(100);
        let mut ev = Vec::new();
        let blob = ds
            .reserve_subscribable(QueryId(1), spec(0, 100, 1), 100, &mut ev)
            .unwrap();
        assert_eq!(ds.subscribe(blob), Some(Phase::Subscribable));
        ds.abort(blob);
        assert!(ds.get(blob).is_none());
        assert_eq!(ds.subscribe(blob), None, "dead blob is not graftable");
        ds.unsubscribe(blob); // no-op, must not panic
        assert_eq!(ds.used(), 0);
    }

    #[test]
    fn has_equivalent_is_a_pure_probe() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let s = spec(0, 100, 1);
        assert!(!ds.has_equivalent(&s));
        ds.insert(QueryId(1), s.clone(), 100, Payload::Virtual, &mut ev)
            .unwrap();
        let before = ds.stats();
        assert!(ds.has_equivalent(&s));
        assert!(!ds.has_equivalent(&spec(500, 10, 1)));
        assert_eq!(ds.stats(), before, "no hit/miss accounting");
    }

    #[test]
    fn lookup_subscribable_orders_exact_then_bytes() {
        let mut ds = store(10_000);
        let mut ev = Vec::new();
        ds.reserve_subscribable(QueryId(1), spec(40, 100, 1), 100, &mut ev)
            .unwrap(); // 60 bytes reuse for probe [0,100)
        ds.reserve_subscribable(QueryId(2), spec(0, 100, 1), 100, &mut ev)
            .unwrap(); // exact
        ds.reserve_subscribable(QueryId(3), spec(90, 100, 1), 100, &mut ev)
            .unwrap(); // 10 bytes
        let cands = ds.lookup_subscribable(&spec(0, 100, 1));
        let producers: Vec<QueryId> = cands.iter().map(|c| c.producer).collect();
        assert_eq!(producers, vec![QueryId(2), QueryId(1), QueryId(3)]);
        assert!(cands[0].exact && !cands[1].exact);
    }

    #[test]
    fn used_accounting_tracks_remove() {
        let mut ds = store(1000);
        let mut ev = Vec::new();
        let b = ds
            .insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        assert_eq!(ds.used(), 100);
        assert_eq!(ds.len(), 1);
        ds.remove(b);
        assert_eq!(ds.used(), 0);
        assert!(ds.is_empty());
    }

    fn cost_store(budget: u64) -> DataStore<IntervalSpec> {
        DataStore::with_policy(budget, EvictionPolicy::CostBased)
    }

    #[test]
    fn benefit_score_orders_by_cost_reuse_and_size() {
        // Cheap, unused, big → lowest; expensive, reused, small → highest.
        let low = benefit_score(0.1, 0, 1000);
        let mid = benefit_score(0.1, 9, 1000);
        let high = benefit_score(2.0, 9, 100);
        assert!(low < mid && mid < high);
        // The cost floor keeps zero-cost entries ordered by reuse/size.
        assert!(benefit_score(0.0, 1, 100) > benefit_score(0.0, 0, 100));
        assert!(benefit_score(0.0, 0, 100) > benefit_score(0.0, 0, 200));
    }

    #[test]
    fn cost_based_evicts_lowest_benefit_per_byte() {
        let mut ds = cost_store(300);
        let mut ev = Vec::new();
        // Same size, different measured costs.
        ds.insert_costed(
            QueryId(1),
            spec(0, 100, 1),
            100,
            5.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            0.5,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.insert_costed(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            3.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // Pressure: the cheapest-to-recompute entry (query 2) must go,
        // even though query 1 is the least recently used.
        ds.insert_costed(
            QueryId(4),
            spec(3000, 100, 1),
            100,
            4.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(2));
        assert_eq!(ev[0].tier, 1);
        assert!((ev[0].score - benefit_score(0.5, 0, 100)).abs() < 1e-12);
    }

    #[test]
    fn observed_reuse_raises_benefit_score() {
        let mut ds = cost_store(200);
        let mut ev = Vec::new();
        let s1 = spec(0, 100, 1);
        ds.insert_costed(QueryId(1), s1.clone(), 100, 1.0, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            1.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // Reuse the first entry twice: its score now dominates.
        assert!(ds.lookup_exact(&s1).is_some());
        assert!(ds.lookup_exact(&s1).is_some());
        ds.insert_costed(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            1.5,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(2), "unreused twin evicted first");
    }

    #[test]
    fn admission_rejects_unprofitable_insert_when_spill_disabled() {
        let mut ds = cost_store(100);
        let mut ev = Vec::new();
        ds.insert_costed(
            QueryId(1),
            spec(0, 100, 1),
            100,
            10.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // A cheap incoming entry cannot beat the expensive resident one.
        assert_eq!(
            ds.insert_costed(
                QueryId(2),
                spec(1000, 100, 1),
                100,
                0.1,
                Payload::Virtual,
                &mut ev
            ),
            Err(DsError::Unprofitable)
        );
        assert!(ev.is_empty(), "the resident entry was not displaced");
        assert_eq!(ds.stats().unprofitable, 1);
        // A more valuable incoming entry displaces it.
        ds.insert_costed(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            20.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(1));
    }

    #[test]
    fn uncosted_reservations_bypass_admission() {
        let mut ds = cost_store(100);
        let mut ev = Vec::new();
        ds.insert_costed(
            QueryId(1),
            spec(0, 100, 1),
            100,
            10.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // A plain malloc (cost unknown until the producer finishes) is
        // always admitted, displacing on score order.
        assert!(ds
            .malloc(QueryId(2), spec(1000, 100, 1), 100, &mut ev)
            .is_ok());
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn spill_demotes_instead_of_dropping() {
        let mut ds = cost_store(100).with_tier2(1000);
        let mut ev = Vec::new();
        let s1 = spec(0, 100, 1);
        let b1 = ds
            .insert_costed(QueryId(1), s1.clone(), 100, 1.0, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            2.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // Demoted, not dropped: no eviction record, entry still resident.
        assert!(ev.is_empty());
        let st = ds.stats();
        assert_eq!((st.spilled, st.bytes_spilled, st.evicted), (1, 100, 0));
        assert_eq!(ds.used(), 100);
        assert_eq!(ds.tier2_used(), 100);
        // The engine gets the detached payload to persist.
        let spills = ds.take_pending_spills();
        assert_eq!(spills.len(), 1);
        assert_eq!(spills[0].blob, b1);
        assert!(ds.take_pending_spills().is_empty(), "drained once");
        // Invisible to normal lookups, but discoverable as restorable.
        assert!(ds.lookup(&s1).is_empty());
        assert_eq!(ds.lookup_restorable_exact(&s1), Some((b1, QueryId(1), 100)));
        // Restorable entries answer exact probes only.
        assert!(ds.lookup_restorable_exact(&spec(0, 50, 1)).is_none());
    }

    #[test]
    fn restore_reheats_spilled_entry() {
        let mut ds = cost_store(100).with_tier2(1000);
        let mut ev = Vec::new();
        let s1 = spec(0, 100, 1);
        let b1 = ds
            .insert_costed(QueryId(1), s1.clone(), 100, 1.0, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            2.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.take_pending_spills();
        // Restoring b1 must make room by spilling the other entry — never
        // by dropping b1 itself.
        assert!(ds.restore(b1, Payload::Virtual, &mut ev));
        assert!(ev.is_empty());
        assert_eq!(ds.used(), 100);
        assert_eq!(ds.tier2_used(), 100);
        let st = ds.stats();
        assert_eq!((st.restored, st.bytes_restored), (1, 100));
        assert_eq!(st.spilled, 2, "the displaced twin spilled in turn");
        assert!(ds.lookup(&s1).len() == 1, "restored entry serves lookups");
        assert!(ds.lookup_restorable_exact(&s1).is_none());
        // A second restore of the same (now FULL) blob is refused.
        assert!(!ds.restore(b1, Payload::Virtual, &mut ev));
    }

    #[test]
    fn adopt_restorable_reuses_blob_id_and_charges_tier2() {
        let mut ds = cost_store(100).with_tier2(1000);
        let s1 = spec(0, 100, 1);
        assert!(ds.adopt_restorable(BlobId(7), s1.clone(), 100));
        assert_eq!(ds.tier2_used(), 100);
        assert_eq!(ds.used(), 0, "adopted bytes live in tier 2, not tier 1");
        assert_eq!(ds.stats().adopted, 1);
        // Discoverable exactly like a frame spilled this run, attributed
        // to the dead-process sentinel producer.
        assert_eq!(
            ds.lookup_restorable_exact(&s1),
            Some((BlobId(7), RECOVERED_PRODUCER, 100))
        );
        // Fresh allocations never collide with the adopted id.
        let mut ev = Vec::new();
        let b = ds
            .insert_costed(
                QueryId(1),
                spec(1000, 100, 1),
                50,
                1.0,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        assert!(b.raw() > 7, "next_blob advanced past the adopted id");
        // Restore re-heats it into tier 1 like any spilled entry; making
        // room displaces the 50-byte twin into tier 2 in turn.
        assert!(ds.restore(BlobId(7), Payload::Virtual, &mut ev));
        assert_eq!(ds.tier2_used(), 50);
        assert_eq!(ds.lookup(&s1).len(), 1, "restored entry serves lookups");
    }

    #[test]
    fn adopt_restorable_refuses_overflow_disabled_and_duplicates() {
        // Spill tier disabled: nothing to adopt into.
        let mut ds = cost_store(100);
        assert!(!ds.adopt_restorable(BlobId(1), spec(0, 100, 1), 100));
        // Tier 2 fits one frame and a half.
        let mut ds = cost_store(100).with_tier2(150);
        assert!(ds.adopt_restorable(BlobId(1), spec(0, 100, 1), 100));
        assert!(
            !ds.adopt_restorable(BlobId(2), spec(500, 100, 1), 100),
            "second frame would overflow the tier-2 budget"
        );
        assert!(
            !ds.adopt_restorable(BlobId(1), spec(900, 100, 1), 10),
            "blob id already taken"
        );
        assert_eq!(ds.stats().adopted, 1);
        assert_eq!(ds.tier2_used(), 100);
    }

    #[test]
    fn tier2_overflow_drops_lowest_score_with_tier2_record() {
        // Tier 2 fits exactly one 100-byte entry.
        let mut ds = cost_store(100).with_tier2(100);
        let mut ev = Vec::new();
        ds.insert_costed(
            QueryId(1),
            spec(0, 100, 1),
            100,
            1.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            2.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert!(ev.is_empty(), "first spill fits tier 2");
        ds.insert_costed(
            QueryId(3),
            spec(2000, 100, 1),
            100,
            3.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // Query 2 spilled; tier 2 overflowed; the cheaper query-1 entry
        // (already in tier 2) was dropped for good.
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].producer, QueryId(1));
        assert_eq!(ev[0].tier, 2);
        assert_eq!(ds.tier2_used(), 100);
        // Both spill requests were queued before the drop cancelled the
        // first: only query 2's payload still needs persisting... unless
        // the engine drained in between. Here nothing drained, and the
        // dropped blob's write was cancelled.
        let spills = ds.take_pending_spills();
        assert_eq!(spills.len(), 1);
        assert_eq!(spills[0].producer, QueryId(2));
    }

    #[test]
    fn drop_restorable_counts_restore_failure() {
        let mut ds = cost_store(100).with_tier2(1000);
        let mut ev = Vec::new();
        let s1 = spec(0, 100, 1);
        let b1 = ds
            .insert_costed(QueryId(1), s1.clone(), 100, 1.0, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            2.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        let rec = ds.drop_restorable(b1).expect("restorable");
        assert_eq!((rec.blob, rec.producer, rec.tier), (b1, QueryId(1), 2));
        assert_eq!(ds.tier2_used(), 0);
        let st = ds.stats();
        assert_eq!((st.restore_failures, st.evicted), (1, 1));
        assert!(ds.lookup_restorable_exact(&s1).is_none());
        // Dropping a FULL or unknown blob is refused.
        assert!(ds.drop_restorable(BlobId(999)).is_none());
    }

    #[test]
    fn remove_releases_tier2_bytes_for_restorable_entries() {
        let mut ds = cost_store(100).with_tier2(1000);
        let mut ev = Vec::new();
        let b1 = ds
            .insert_costed(
                QueryId(1),
                spec(0, 100, 1),
                100,
                1.0,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        ds.insert_costed(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            2.0,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ds.tier2_used(), 100);
        ds.remove(b1);
        assert_eq!(ds.tier2_used(), 0);
        assert_eq!(ds.used(), 100, "tier-1 accounting untouched");
    }

    #[test]
    fn lru_policy_ignores_tier2_and_drops_as_before() {
        // With tier 2 disabled (the default) every policy drops its
        // victims exactly as before this layer existed.
        let mut ds = store(100);
        let mut ev = Vec::new();
        ds.insert(QueryId(1), spec(0, 100, 1), 100, Payload::Virtual, &mut ev)
            .unwrap();
        ds.insert(
            QueryId(2),
            spec(1000, 100, 1),
            100,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].tier, 1);
        assert_eq!(ds.stats().spilled, 0);
        assert!(ds.take_pending_spills().is_empty());
    }

    #[test]
    fn restore_survives_shrink_dropping_the_restoring_entry() {
        // Tier 1 and tier 2 both hold exactly one entry. Restoring the
        // spilled entry must first make room by spilling the resident
        // one, which overflows tier 2 — and the shrink picks the
        // *lowest-scoring* RESTORABLE entry, which is the entry being
        // restored. restore() must report failure (the caller
        // recomputes), not panic on the vanished entry.
        let mut ds = DataStore::with_policy(100, EvictionPolicy::CostBased).with_tier2(100);
        let mut ev = Vec::new();
        // Cheap entry A: first to be evicted, lowest score ever after.
        ds.insert_costed(
            QueryId(1),
            spec(0, 100, 1),
            100,
            0.1,
            Payload::Virtual,
            &mut ev,
        )
        .unwrap();
        // Expensive entry B evicts A; with tier 2 open, A spills.
        let b = ds
            .insert_costed(
                QueryId(2),
                spec(500, 100, 1),
                100,
                9.0,
                Payload::Virtual,
                &mut ev,
            )
            .unwrap();
        assert!(ev.is_empty(), "A was spilled, not evicted: {ev:?}");
        assert_eq!(ds.stats().spilled, 1);
        let (a_blob, a_producer, _) = ds.lookup_restorable_exact(&spec(0, 100, 1)).unwrap();
        assert_eq!(a_producer, QueryId(1));

        assert!(
            !ds.restore(a_blob, Payload::Virtual, &mut ev),
            "restore must fail once the shrink dropped its own entry"
        );
        // B was spilled to make room; A (lowest score) was dropped from
        // tier 2 to fit it. Exactly one tier-2 eviction record, for A.
        assert_eq!(ev.len(), 1, "{ev:?}");
        assert_eq!(ev[0].blob, a_blob);
        assert_eq!(ev[0].tier, 2);
        assert!(ds.lookup_restorable_exact(&spec(0, 100, 1)).is_none());
        let (b_blob, b_producer, _) = ds.lookup_restorable_exact(&spec(500, 100, 1)).unwrap();
        assert_eq!((b_blob, b_producer), (b, QueryId(2)));
    }
}
