//! RGB output images assembled by query execution.

use crate::dataset::BYTES_PER_PIXEL;

/// A dense row-major RGB image (3 bytes per pixel).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGB samples, `width * height * 3` bytes.
    pub data: Vec<u8>,
}

impl RgbImage {
    /// Creates a black (zeroed) image.
    pub fn new(width: u32, height: u32) -> Self {
        RgbImage {
            width,
            height,
            data: vec![0; width as usize * height as usize * BYTES_PER_PIXEL as usize],
        }
    }

    /// Total byte size.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn offset(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        (y as usize * self.width as usize + x as usize) * BYTES_PER_PIXEL as usize
    }

    /// Reads pixel `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        let o = self.offset(x, y);
        [self.data[o], self.data[o + 1], self.data[o + 2]]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, px: [u8; 3]) {
        let o = self.offset(x, y);
        self.data[o] = px[0];
        self.data[o + 1] = px[1];
        self.data[o + 2] = px[2];
    }

    /// Copies a rectangular block from `src` (at `(sx, sy)`) into `self`
    /// (at `(dx, dy)`), `w × h` pixels. The blocks must be in bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn blit(&mut self, dx: u32, dy: u32, src: &RgbImage, sx: u32, sy: u32, w: u32, h: u32) {
        assert!(
            dx + w <= self.width && dy + h <= self.height,
            "dst block out of bounds"
        );
        assert!(
            sx + w <= src.width && sy + h <= src.height,
            "src block out of bounds"
        );
        let row_bytes = w as usize * BYTES_PER_PIXEL as usize;
        for row in 0..h {
            let soff = src.offset(sx, sy + row);
            let doff = self.offset(dx, dy + row);
            self.data[doff..doff + row_bytes].copy_from_slice(&src.data[soff..soff + row_bytes]);
        }
    }
}

/// A borrowed view of RGB pixel data — lets callers project directly from
/// cached blob bytes (shared `Arc<Vec<u8>>`) without copying them into an
/// owned [`RgbImage`].
#[derive(Clone, Copy, Debug)]
pub struct RgbView<'a> {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGB samples, `width * height * 3` bytes.
    pub data: &'a [u8],
}

impl<'a> RgbView<'a> {
    /// Wraps raw bytes; panics when the length does not match the
    /// dimensions.
    pub fn new(width: u32, height: u32, data: &'a [u8]) -> Self {
        assert_eq!(
            data.len(),
            width as usize * height as usize * BYTES_PER_PIXEL as usize,
            "pixel data length does not match dimensions"
        );
        RgbView {
            width,
            height,
            data,
        }
    }

    /// Reads pixel `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        let o = (y as usize * self.width as usize + x as usize) * BYTES_PER_PIXEL as usize;
        [self.data[o], self.data[o + 1], self.data[o + 2]]
    }
}

impl RgbImage {
    /// Borrows the image as a view.
    pub fn view(&self) -> RgbView<'_> {
        RgbView {
            width: self.width,
            height: self.height,
            data: &self.data,
        }
    }

    /// Writes the image as a binary PPM (P6) file — the simplest portable
    /// format, viewable by practically any image tool.
    pub fn write_ppm<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "P6\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.data)?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reads_same_pixels() {
        let mut img = RgbImage::new(3, 2);
        img.set(2, 1, [5, 6, 7]);
        let v = img.view();
        assert_eq!(v.get(2, 1), [5, 6, 7]);
        assert_eq!(v.get(0, 0), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn view_length_checked() {
        RgbView::new(2, 2, &[0u8; 5]);
    }

    #[test]
    fn ppm_roundtrip_header_and_bytes() {
        let mut img = RgbImage::new(2, 1);
        img.set(0, 0, [1, 2, 3]);
        img.set(1, 0, [4, 5, 6]);
        let path = std::env::temp_dir().join(format!("vmqs_ppm_{}.ppm", std::process::id()));
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..11], b"P6\n2 1\n255\n");
        assert_eq!(&bytes[11..], &[1, 2, 3, 4, 5, 6]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn new_image_is_black() {
        let img = RgbImage::new(4, 3);
        assert_eq!(img.byte_len(), 36);
        assert_eq!(img.get(3, 2), [0, 0, 0]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = RgbImage::new(2, 2);
        img.set(1, 0, [7, 8, 9]);
        assert_eq!(img.get(1, 0), [7, 8, 9]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn blit_copies_block() {
        let mut src = RgbImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                src.set(x, y, [x as u8, y as u8, 42]);
            }
        }
        let mut dst = RgbImage::new(4, 4);
        dst.blit(1, 1, &src, 2, 2, 2, 2);
        assert_eq!(dst.get(1, 1), [2, 2, 42]);
        assert_eq!(dst.get(2, 2), [3, 3, 42]);
        assert_eq!(dst.get(0, 0), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn blit_bounds_checked() {
        let src = RgbImage::new(2, 2);
        let mut dst = RgbImage::new(2, 2);
        dst.blit(1, 1, &src, 0, 0, 2, 2);
    }
}
