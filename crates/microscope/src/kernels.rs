//! Processing kernels: subsampling, pixel averaging, and the `project`
//! data transformation (paper §2 Eq. 3 and §3, Fig. 2).
//!
//! All kernels operate per retrieved chunk so that query execution can
//! interleave I/O and computation chunk by chunk, exactly as the paper's
//! runtime does: a retrieved chunk is *clipped* to the query window and
//! then *processed* into the output image at the desired magnification.
//!
//! Alignment invariants from [`VmQuery`] (window origin/size are multiples
//! of the zoom) guarantee that `project` — computing part of one query's
//! output from another's cached output — is exact, never resampled.

use crate::dataset::BYTES_PER_PIXEL;
use crate::image::RgbImage;
use crate::query::{VmOp, VmQuery};
use std::sync::Arc;
use vmqs_core::Rect;

/// Minimum output rows per band before row-banded parallelism pays for a
/// scoped-thread spawn.
const MIN_BAND_ROWS: u32 = 32;

/// Worker threads available for row-banded kernels: the machine's
/// available parallelism, capped (bands get too thin beyond the cap).
pub fn kernel_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Number of row bands to split `rows` into for `threads` workers; 1 means
/// run serially.
fn band_count(rows: u32, threads: usize) -> u32 {
    if threads <= 1 || rows < 2 * MIN_BAND_ROWS {
        return 1;
    }
    (threads as u32).min(rows / MIN_BAND_ROWS)
}

/// True when [`compute_from_pages`] would actually split `rows` output
/// rows across bands (callers can skip materializing the page set when a
/// serial pass will run anyway).
pub fn will_band(rows: u32, threads: usize) -> bool {
    band_count(rows, threads) > 1
}

/// The band of `query` covering output rows `[oy0, oy1)`: a sub-query with
/// the same x-extent and zoom. Built directly (fields, not `VmQuery::new`)
/// because the derived region is already zoom-aligned and in bounds.
fn row_band_query(query: &VmQuery, oy0: u32, oy1: u32) -> VmQuery {
    let z = query.zoom;
    VmQuery {
        slide: query.slide,
        region: Rect::new(
            query.region.x,
            query.region.y + oy0 * z,
            query.region.w,
            (oy1 - oy0) * z,
        ),
        zoom: z,
        op: query.op,
    }
}

/// Writes into `out` every output pixel of `query` whose source sample
/// point falls inside `chunk_rect`, reading samples from `chunk_data`
/// (the chunk's pixels, row-major, `chunk_rect.w` wide).
///
/// `out` must be the full output image of `query`
/// (`query.output_dims()`-sized, origin at the window's top-left).
pub fn subsample_chunk(out: &mut RgbImage, query: &VmQuery, chunk_rect: Rect, chunk_data: &[u8]) {
    let z = query.zoom;
    let region = query.region;
    let inter = match region.intersect(&chunk_rect) {
        Some(i) => i,
        None => return,
    };
    // Output pixels whose sample point (region.x + ox·z, region.y + oy·z)
    // lies inside the intersection. region.x is z-aligned.
    let ox0 = (inter.x - region.x).div_ceil(z);
    let ox1 = (inter.x1() - 1 - region.x) / z;
    let oy0 = (inter.y - region.y).div_ceil(z);
    let oy1 = (inter.y1() - 1 - region.y) / z;
    let bpp = BYTES_PER_PIXEL as usize;
    let cw = chunk_rect.w as usize;
    let ow = out.width as usize;
    let src_step = z as usize * bpp;
    for oy in oy0..=oy1 {
        let by = region.y + oy * z;
        let bx = region.x + ox0 * z;
        let mut src = ((by - chunk_rect.y) as usize * cw + (bx - chunk_rect.x) as usize) * bpp;
        let mut dst = (oy as usize * ow + ox0 as usize) * bpp;
        for _ in ox0..=ox1 {
            out.data[dst..dst + 3].copy_from_slice(&chunk_data[src..src + 3]);
            src += src_step;
            dst += bpp;
        }
    }
}

/// Running sums for pixel averaging. One query execution owns one
/// accumulator; each retrieved chunk adds its clipped pixels; `finalize`
/// divides. Accumulating per chunk makes averaging windows that straddle
/// chunk boundaries exact.
#[derive(Debug)]
pub struct AvgAccumulator {
    width: u32,
    height: u32,
    sums: Vec<u64>,
    counts: Vec<u32>,
}

impl AvgAccumulator {
    /// Creates a zeroed accumulator for `query`'s output.
    pub fn new(query: &VmQuery) -> Self {
        let (w, h) = query.output_dims();
        AvgAccumulator {
            width: w,
            height: h,
            sums: vec![0; w as usize * h as usize * BYTES_PER_PIXEL as usize],
            counts: vec![0; w as usize * h as usize],
        }
    }

    /// Adds every pixel of `chunk_rect ∩ query.region` to the accumulator
    /// of the output pixel whose N×N window contains it.
    ///
    /// Iterates per output pixel over its (clipped) N×N sample block,
    /// reading each block row as one contiguous byte run — no per-sample
    /// division, and the compiler can keep the three channel sums in
    /// registers across a run.
    pub fn accumulate_chunk(&mut self, query: &VmQuery, chunk_rect: Rect, chunk_data: &[u8]) {
        let z = query.zoom;
        let region = query.region;
        let inter = match region.intersect(&chunk_rect) {
            Some(i) => i,
            None => return,
        };
        let oy0 = (inter.y - region.y) / z;
        let oy1 = (inter.y1() - 1 - region.y) / z;
        let ox0 = (inter.x - region.x) / z;
        let ox1 = (inter.x1() - 1 - region.x) / z;
        let bpp = BYTES_PER_PIXEL as usize;
        let cw = chunk_rect.w as usize;
        for oy in oy0..=oy1 {
            // The block's sample rows, clipped to the intersection.
            let by_lo = inter.y.max(region.y + oy * z);
            let by_hi = inter.y1().min(region.y + (oy + 1) * z);
            let pix_row = oy as usize * self.width as usize;
            for ox in ox0..=ox1 {
                let bx_lo = inter.x.max(region.x + ox * z);
                let bx_hi = inter.x1().min(region.x + (ox + 1) * z);
                let npx = (bx_hi - bx_lo) as usize;
                let mut s = [0u64; 3];
                for by in by_lo..by_hi {
                    let off =
                        ((by - chunk_rect.y) as usize * cw + (bx_lo - chunk_rect.x) as usize) * bpp;
                    for p in chunk_data[off..off + npx * bpp].chunks_exact(bpp) {
                        s[0] += p[0] as u64;
                        s[1] += p[1] as u64;
                        s[2] += p[2] as u64;
                    }
                }
                let pix = pix_row + ox as usize;
                let dst = pix * bpp;
                self.sums[dst] += s[0];
                self.sums[dst + 1] += s[1];
                self.sums[dst + 2] += s[2];
                self.counts[pix] += (by_hi - by_lo) * (bx_hi - bx_lo);
            }
        }
    }

    /// Divides sums by counts, producing the output image. Pixels that
    /// received no samples stay black.
    pub fn finalize(self) -> RgbImage {
        let mut img = RgbImage::new(self.width, self.height);
        for pix in 0..self.counts.len() {
            let n = self.counts[pix] as u64;
            if n == 0 {
                continue;
            }
            let s = pix * BYTES_PER_PIXEL as usize;
            for c in 0..BYTES_PER_PIXEL as usize {
                img.data[s + c] = (self.sums[s + c] / n) as u8;
            }
        }
        img
    }
}

/// Computes a query's full output from its chunks, fetching each needed
/// chunk's page via `fetch(chunk_index) -> page bytes`. This is the
/// from-raw-data execution path shared by the threaded server and tests.
pub fn compute_from_chunks<F>(query: &VmQuery, mut fetch: F) -> RgbImage
where
    F: FnMut(u64) -> std::sync::Arc<Vec<u8>>,
{
    let chunks = query.slide.chunks_intersecting(&query.region);
    match query.op {
        VmOp::Subsample => {
            let (w, h) = query.output_dims();
            let mut out = RgbImage::new(w, h);
            for idx in chunks {
                let rect = query.slide.chunk_rect(idx);
                let page = fetch(idx);
                subsample_chunk(&mut out, query, rect, &page);
            }
            out
        }
        VmOp::Average => {
            let mut acc = AvgAccumulator::new(query);
            for idx in chunks {
                let rect = query.slide.chunk_rect(idx);
                let page = fetch(idx);
                acc.accumulate_chunk(query, rect, &page);
            }
            acc.finalize()
        }
    }
}

/// Renders output rows `[oy0, oy1)` of `query` from prefetched chunk
/// pages, returning the band as its own image.
fn compute_rows(query: &VmQuery, pages: &[(Rect, Arc<Vec<u8>>)], oy0: u32, oy1: u32) -> RgbImage {
    let sub = row_band_query(query, oy0, oy1);
    match query.op {
        VmOp::Subsample => {
            let (bw, bh) = sub.output_dims();
            let mut img = RgbImage::new(bw, bh);
            for (rect, data) in pages {
                subsample_chunk(&mut img, &sub, *rect, data);
            }
            img
        }
        VmOp::Average => {
            let mut acc = AvgAccumulator::new(&sub);
            for (rect, data) in pages {
                acc.accumulate_chunk(&sub, *rect, data);
            }
            acc.finalize()
        }
    }
}

/// Computes a query's full output from prefetched chunk pages, row-banding
/// the output across up to `threads` scoped workers. Each band is a
/// disjoint `&mut` slice of the output, so no locking is involved, and
/// each output pixel's full sample set lives in exactly one band — the
/// result is byte-identical to [`compute_from_chunks`].
///
/// Falls back to a single serial pass when `threads <= 1` or the output is
/// too short to band.
pub fn compute_from_pages(
    query: &VmQuery,
    pages: &[(Rect, Arc<Vec<u8>>)],
    threads: usize,
) -> RgbImage {
    let (w, h) = query.output_dims();
    let bands = band_count(h, threads);
    if bands <= 1 {
        // The single band *is* the full output — no copy.
        return compute_rows(query, pages, 0, h);
    }
    let mut out = RgbImage::new(w, h);
    let rows_per = h.div_ceil(bands);
    let row_bytes = w as usize * BYTES_PER_PIXEL as usize;
    std::thread::scope(|s| {
        for (i, band) in out
            .data
            .chunks_mut(rows_per as usize * row_bytes)
            .enumerate()
        {
            let oy0 = i as u32 * rows_per;
            let oy1 = (oy0 + rows_per).min(h);
            s.spawn(move || {
                let img = compute_rows(query, pages, oy0, oy1);
                band.copy_from_slice(&img.data);
            });
        }
    });
    out
}

/// The `project` transformation (Eq. 3): fills the part of `target`'s
/// output derivable from `src_query`'s cached output `src_img`, writing
/// into `out` (the full output image of `target`). Returns the covered
/// base-resolution rectangle (zoom-aligned to `target`), or `None` when
/// nothing is derivable.
///
/// For subsampling the projection picks every `(target.zoom /
/// src.zoom)`-th cached pixel; for averaging it averages each
/// factor×factor block of cached averages — exact because aligned
/// averaging blocks nest.
pub fn project(
    out: &mut RgbImage,
    target: &VmQuery,
    src_query: &VmQuery,
    src_img: crate::image::RgbView<'_>,
) -> Option<Rect> {
    let coverage = src_query.aligned_coverage(target)?;
    let tz = target.zoom;
    let sz = src_query.zoom;
    let factor = tz / sz;
    debug_assert!(factor >= 1);
    let (sw, sh) = src_query.output_dims();
    debug_assert_eq!(src_img.width, sw);
    debug_assert_eq!(src_img.height, sh);

    for by in (coverage.y..coverage.y1()).step_by(tz as usize) {
        let oy = (by - target.region.y) / tz;
        let sy0 = (by - src_query.region.y) / sz;
        for bx in (coverage.x..coverage.x1()).step_by(tz as usize) {
            let ox = (bx - target.region.x) / tz;
            let sx0 = (bx - src_query.region.x) / sz;
            let px = match target.op {
                VmOp::Subsample => src_img.get(sx0, sy0),
                VmOp::Average => {
                    let mut sums = [0u64; 3];
                    for dy in 0..factor {
                        for dx in 0..factor {
                            let p = src_img.get(sx0 + dx, sy0 + dy);
                            sums[0] += p[0] as u64;
                            sums[1] += p[1] as u64;
                            sums[2] += p[2] as u64;
                        }
                    }
                    let n = (factor * factor) as u64;
                    [
                        (sums[0] / n) as u8,
                        (sums[1] / n) as u8,
                        (sums[2] / n) as u8,
                    ]
                }
            };
            out.set(ox, oy, px);
        }
    }
    Some(coverage)
}

/// [`project`], row-banded across up to `threads` scoped workers. Each
/// band projects its rows of the coverage into a scratch image and copies
/// only the covered columns back into its disjoint `&mut` slice of `out`,
/// so pixels outside this source's coverage (possibly written by earlier
/// sources) are preserved. Byte-identical to the serial `project`.
pub fn project_banded(
    out: &mut RgbImage,
    target: &VmQuery,
    src_query: &VmQuery,
    src_img: crate::image::RgbView<'_>,
    threads: usize,
) -> Option<Rect> {
    let coverage = src_query.aligned_coverage(target)?;
    let tz = target.zoom;
    let oy0c = (coverage.y - target.region.y) / tz;
    let oy1c = (coverage.y1() - target.region.y) / tz; // exclusive
    let bands = band_count(oy1c - oy0c, threads);
    if bands <= 1 {
        return project(out, target, src_query, src_img);
    }
    let bpp = BYTES_PER_PIXEL as usize;
    let row_bytes = out.width as usize * bpp;
    let x0 = ((coverage.x - target.region.x) / tz) as usize * bpp;
    let x1 = x0 + (coverage.w / tz) as usize * bpp;
    let rows_per = (oy1c - oy0c).div_ceil(bands);
    let covered_rows = &mut out.data[oy0c as usize * row_bytes..oy1c as usize * row_bytes];
    std::thread::scope(|s| {
        for (i, band) in covered_rows
            .chunks_mut(rows_per as usize * row_bytes)
            .enumerate()
        {
            let boy0 = oy0c + i as u32 * rows_per;
            let boy1 = (boy0 + rows_per).min(oy1c);
            s.spawn(move || {
                let sub = row_band_query(target, boy0, boy1);
                let (bw, bh) = sub.output_dims();
                let mut scratch = RgbImage::new(bw, bh);
                if project(&mut scratch, &sub, src_query, src_img).is_some() {
                    for r in 0..bh as usize {
                        band[r * row_bytes + x0..r * row_bytes + x1]
                            .copy_from_slice(&scratch.data[r * row_bytes + x0..r * row_bytes + x1]);
                    }
                }
            });
        }
    });
    Some(coverage)
}

/// Reference renderer: computes `query`'s output directly from the
/// synthetic ground-truth pixel function, bypassing chunks, pages, and
/// caches. The oracle for every execution-path test.
pub fn reference_render(query: &VmQuery) -> RgbImage {
    let (w, h) = query.output_dims();
    let z = query.zoom;
    let mut img = RgbImage::new(w, h);
    for oy in 0..h {
        for ox in 0..w {
            let bx = query.region.x + ox * z;
            let by = query.region.y + oy * z;
            let px = match query.op {
                VmOp::Subsample => query.slide.synthetic_pixel(bx, by),
                VmOp::Average => {
                    let mut sums = [0u64; 3];
                    for dy in 0..z {
                        for dx in 0..z {
                            let p = query.slide.synthetic_pixel(bx + dx, by + dy);
                            sums[0] += p[0] as u64;
                            sums[1] += p[1] as u64;
                            sums[2] += p[2] as u64;
                        }
                    }
                    let n = (z * z) as u64;
                    [
                        (sums[0] / n) as u8,
                        (sums[1] / n) as u8,
                        (sums[2] / n) as u8,
                    ]
                }
            };
            img.set(ox, oy, px);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SlideDataset, PAGE_SIZE};
    use std::sync::Arc;
    use vmqs_core::DatasetId;
    use vmqs_storage::{DataSource, SyntheticSource};

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 600, 600)
    }

    fn fetch_real(q: &VmQuery) -> impl FnMut(u64) -> Arc<Vec<u8>> + '_ {
        let src = SyntheticSource::new();
        let id = q.slide.id;
        move |idx| Arc::new(src.read_page(id, idx, PAGE_SIZE).unwrap())
    }

    #[test]
    fn subsample_matches_reference_single_chunk() {
        let q = VmQuery::new(slide(), Rect::new(8, 8, 64, 64), 2, VmOp::Subsample);
        let got = compute_from_chunks(&q, fetch_real(&q));
        assert_eq!(got, reference_render(&q));
    }

    #[test]
    fn subsample_matches_reference_across_chunk_boundaries() {
        // Window straddles the chunk boundary at 147 in both axes.
        let q = VmQuery::new(slide(), Rect::new(100, 100, 96, 96), 4, VmOp::Subsample);
        let got = compute_from_chunks(&q, fetch_real(&q));
        assert_eq!(got, reference_render(&q));
    }

    #[test]
    fn subsample_zoom1_is_identity_crop() {
        let q = VmQuery::new(slide(), Rect::new(140, 140, 16, 16), 1, VmOp::Subsample);
        let got = compute_from_chunks(&q, fetch_real(&q));
        let r = reference_render(&q);
        assert_eq!(got, r);
        assert_eq!(got.get(0, 0), q.slide.synthetic_pixel(140, 140));
    }

    #[test]
    fn average_matches_reference_single_chunk() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 32, 32), 4, VmOp::Average);
        let got = compute_from_chunks(&q, fetch_real(&q));
        assert_eq!(got, reference_render(&q));
    }

    #[test]
    fn average_matches_reference_across_chunk_boundaries() {
        // Averaging windows straddle the 147-pixel chunk boundary; the
        // accumulator must combine samples from up to four chunks.
        let q = VmQuery::new(slide(), Rect::new(136, 136, 24, 24), 8, VmOp::Average);
        let got = compute_from_chunks(&q, fetch_real(&q));
        assert_eq!(got, reference_render(&q));
    }

    #[test]
    fn project_same_zoom_is_copy() {
        let s = slide();
        let cached = VmQuery::new(s, Rect::new(0, 0, 200, 200), 2, VmOp::Subsample);
        let cached_img = compute_from_chunks(&cached, fetch_real(&cached));
        let target = VmQuery::new(s, Rect::new(100, 100, 200, 200), 2, VmOp::Subsample);
        let (w, h) = target.output_dims();
        let mut out = RgbImage::new(w, h);
        let cov = project(&mut out, &target, &cached, cached_img.view()).unwrap();
        assert_eq!(cov, Rect::new(100, 100, 100, 100));
        // Projected quadrant must match reference pixels.
        let reference = reference_render(&target);
        for oy in 0..50 {
            for ox in 0..50 {
                assert_eq!(out.get(ox, oy), reference.get(ox, oy), "pixel {ox},{oy}");
            }
        }
    }

    #[test]
    fn project_subsample_zoom_change_matches_reference() {
        let s = slide();
        let cached = VmQuery::new(s, Rect::new(0, 0, 400, 400), 2, VmOp::Subsample);
        let cached_img = compute_from_chunks(&cached, fetch_real(&cached));
        let target = VmQuery::new(s, Rect::new(0, 0, 400, 400), 8, VmOp::Subsample);
        let (w, h) = target.output_dims();
        let mut out = RgbImage::new(w, h);
        let cov = project(&mut out, &target, &cached, cached_img.view()).unwrap();
        assert_eq!(cov, target.region);
        assert_eq!(out, reference_render(&target));
    }

    #[test]
    fn project_average_zoom_change_matches_direct_computation_closely() {
        let s = slide();
        let cached = VmQuery::new(s, Rect::new(0, 0, 160, 160), 2, VmOp::Average);
        let cached_img = compute_from_chunks(&cached, fetch_real(&cached));
        let target = VmQuery::new(s, Rect::new(0, 0, 160, 160), 8, VmOp::Average);
        let (w, h) = target.output_dims();
        let mut out = RgbImage::new(w, h);
        project(&mut out, &target, &cached, cached_img.view()).unwrap();
        // Averaging averages re-quantizes (integer division at each level),
        // so allow ±4 per channel against the direct render.
        let direct = reference_render(&target);
        for oy in 0..h {
            for ox in 0..w {
                let a = out.get(ox, oy);
                let b = direct.get(ox, oy);
                for c in 0..3 {
                    assert!(
                        (a[c] as i32 - b[c] as i32).abs() <= 4,
                        "pixel {ox},{oy} channel {c}: {} vs {}",
                        a[c],
                        b[c]
                    );
                }
            }
        }
    }

    #[test]
    fn project_incompatible_returns_none() {
        let s = slide();
        let cached = VmQuery::new(s, Rect::new(0, 0, 100, 100), 4, VmOp::Subsample);
        let cached_img = RgbImage::new(25, 25);
        let target = VmQuery::new(s, Rect::new(0, 0, 100, 100), 2, VmOp::Subsample);
        let mut out = RgbImage::new(50, 50);
        assert!(project(&mut out, &target, &cached, cached_img.view()).is_none());
    }

    #[test]
    fn project_plus_subqueries_reconstruct_full_output() {
        // End-to-end partial-reuse path: project what the cache covers,
        // compute sub-queries for the rest, and verify the assembled image
        // equals a from-scratch render.
        let s = slide();
        let cached = VmQuery::new(s, Rect::new(0, 0, 200, 400), 2, VmOp::Subsample);
        let cached_img = compute_from_chunks(&cached, fetch_real(&cached));
        let target = VmQuery::new(s, Rect::new(100, 0, 300, 400), 2, VmOp::Subsample);
        let (w, h) = target.output_dims();
        let mut out = RgbImage::new(w, h);
        let cov = project(&mut out, &target, &cached, cached_img.view()).unwrap();
        for sub in target.subqueries_for_remainder(&[cov]) {
            let sub_img = compute_from_chunks(&sub, fetch_real(&sub));
            // Paste the sub-query output into the final image.
            let ox = (sub.region.x - target.region.x) / target.zoom;
            let oy = (sub.region.y - target.region.y) / target.zoom;
            let (sw, sh) = sub.output_dims();
            out.blit(ox, oy, &sub_img, 0, 0, sw, sh);
        }
        assert_eq!(out, reference_render(&target));
    }

    fn pages_for(q: &VmQuery) -> Vec<(Rect, Arc<Vec<u8>>)> {
        let src = SyntheticSource::new();
        q.slide
            .chunks_intersecting(&q.region)
            .into_iter()
            .map(|idx| {
                (
                    q.slide.chunk_rect(idx),
                    Arc::new(src.read_page(q.slide.id, idx, PAGE_SIZE).unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn banded_compute_matches_serial_byte_for_byte() {
        // Output heights chosen to exercise uneven band splits and chunk
        // boundaries; both ops; verified against the serial path.
        for (rect, zoom, op) in [
            (Rect::new(0, 0, 400, 280), 2, VmOp::Subsample),
            (Rect::new(100, 100, 480, 400), 4, VmOp::Average),
            (Rect::new(8, 16, 160, 520), 1, VmOp::Subsample),
            (Rect::new(0, 0, 256, 264), 2, VmOp::Average),
        ] {
            let q = VmQuery::new(slide(), rect, zoom, op);
            let pages = pages_for(&q);
            let serial = compute_from_pages(&q, &pages, 1);
            assert_eq!(serial, compute_from_chunks(&q, fetch_real(&q)), "{q:?}");
            for threads in [2, 3, 4, 7] {
                let par = compute_from_pages(&q, &pages, threads);
                assert_eq!(par, serial, "threads {threads} {q:?}");
            }
        }
    }

    #[test]
    fn banded_compute_small_output_falls_back_to_serial() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 64, 48), 2, VmOp::Average);
        let pages = pages_for(&q);
        assert_eq!(compute_from_pages(&q, &pages, 8), reference_render(&q));
    }

    #[test]
    fn banded_project_matches_serial_and_preserves_outside_pixels() {
        let s = slide();
        for op in [VmOp::Subsample, VmOp::Average] {
            let cached = VmQuery::new(s, Rect::new(0, 0, 400, 400), 2, op);
            let cached_img = compute_from_chunks(&cached, fetch_real(&cached));
            // Coverage is a strict sub-rectangle of the target output.
            let target = VmQuery::new(s, Rect::new(200, 100, 400, 480), 4, op);
            let (w, h) = target.output_dims();
            // Pre-fill with a sentinel so clobbering outside coverage shows.
            let mut serial = RgbImage::new(w, h);
            serial.data.fill(0xAB);
            let mut banded = serial.clone();
            let cov_a = project(&mut serial, &target, &cached, cached_img.view());
            let cov_b = project_banded(&mut banded, &target, &cached, cached_img.view(), 4);
            assert_eq!(cov_a, cov_b, "op {op:?}");
            assert!(cov_a.is_some());
            assert_eq!(banded, serial, "op {op:?}");
        }
    }

    #[test]
    fn kernel_threads_is_positive() {
        assert!(kernel_threads() >= 1);
    }

    #[test]
    fn accumulator_counts_full_blocks() {
        let q = VmQuery::new(slide(), Rect::new(0, 0, 16, 16), 4, VmOp::Average);
        let mut acc = AvgAccumulator::new(&q);
        let rect = q.slide.chunk_rect(0);
        let page = SyntheticSource::new()
            .read_page(q.slide.id, 0, PAGE_SIZE)
            .unwrap();
        acc.accumulate_chunk(&q, rect, &page);
        assert!(acc.counts.iter().all(|&c| c == 16)); // 4x4 per output pixel
    }
}
