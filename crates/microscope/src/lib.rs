//! # vmqs-microscope
//!
//! The Virtual Microscope application (paper §3) implemented against the
//! VMQS middleware: a digital emulation of a high-power light microscope
//! over multi-gigabyte digitized slides.
//!
//! * [`SlideDataset`] — 2-D slides regularly partitioned into square
//!   chunks, one chunk per 64 KB storage page;
//! * [`VmQuery`] — the query predicate (slide, window, magnification,
//!   processing function) implementing [`vmqs_core::QuerySpec`], with the
//!   paper's Eq. 4 overlap index;
//! * [`kernels`] — the two processing functions (subsampling and pixel
//!   averaging, Fig. 2), the `project` data transformation (Eq. 3), and a
//!   ground-truth reference renderer for tests;
//! * [`VmCostModel`] — CPU costs calibrated to the paper's measured
//!   CPU:I/O ratios, consumed by the discrete-event simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod dataset;
mod image;
pub mod kernels;
mod query;

pub use cost::VmCostModel;
pub use dataset::{SlideDataset, BYTES_PER_PIXEL, CHUNK_SIDE, PAGE_SIZE};
pub use image::{RgbImage, RgbView};
pub use query::{VmOp, VmQuery};
