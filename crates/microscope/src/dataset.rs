//! Slide datasets and their on-disk chunk layout.
//!
//! Raw Virtual Microscope input is a 2-D digitized slide stored at the
//! highest magnification, regularly partitioned into rectangular chunks for
//! I/O bandwidth (paper §3). Following the evaluation setup, each chunk is
//! a square region of 3-byte RGB pixels stored in one 64 KB page; a
//! 30000×30000 slide therefore occupies ≈2.5 GB across ~42k pages.

use vmqs_core::{DatasetId, Rect};
use vmqs_storage::{DataSource, SyntheticSource};

/// Bytes per pixel (RGB).
pub const BYTES_PER_PIXEL: u32 = 3;
/// Page size used for storage, per the paper's setup (64 KB).
pub const PAGE_SIZE: usize = 65536;
/// Chunk side length in pixels: the largest square of 3-byte pixels that
/// fits in one 64 KB page (147·147·3 = 64 827 ≤ 65 536).
pub const CHUNK_SIDE: u32 = 147;

/// One digitized slide: dimensions plus derived chunk-grid layout.
///
/// Chunks are indexed row-major; chunk index equals the page index of the
/// page holding it, so the Page Space Manager addresses chunks directly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlideDataset {
    /// Dataset identity.
    pub id: DatasetId,
    /// Slide width in pixels at base magnification.
    pub width: u32,
    /// Slide height in pixels at base magnification.
    pub height: u32,
}

impl SlideDataset {
    /// Creates a dataset descriptor. Panics on zero dimensions.
    pub fn new(id: DatasetId, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "degenerate slide dimensions");
        SlideDataset { id, width, height }
    }

    /// The paper's evaluation slides: 30000×30000 3-byte pixels (≈2.5 GB
    /// each; three of them make the 7.5 GB corpus).
    pub fn paper_scale(id: DatasetId) -> Self {
        SlideDataset::new(id, 30_000, 30_000)
    }

    /// Chunk-grid columns.
    #[inline]
    pub fn chunk_cols(&self) -> u32 {
        self.width.div_ceil(CHUNK_SIDE)
    }

    /// Chunk-grid rows.
    #[inline]
    pub fn chunk_rows(&self) -> u32 {
        self.height.div_ceil(CHUNK_SIDE)
    }

    /// Total chunks (= pages) in the dataset.
    #[inline]
    pub fn chunk_count(&self) -> u64 {
        self.chunk_cols() as u64 * self.chunk_rows() as u64
    }

    /// Total stored bytes (pages × page size).
    pub fn stored_bytes(&self) -> u64 {
        self.chunk_count() * PAGE_SIZE as u64
    }

    /// The full-slide rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// The pixel region covered by chunk `index` (clipped at the slide's
    /// right/bottom edges).
    pub fn chunk_rect(&self, index: u64) -> Rect {
        let cols = self.chunk_cols() as u64;
        debug_assert!(index < self.chunk_count(), "chunk index out of range");
        let row = (index / cols) as u32;
        let col = (index % cols) as u32;
        let x = col * CHUNK_SIDE;
        let y = row * CHUNK_SIDE;
        Rect::new(
            x,
            y,
            CHUNK_SIDE.min(self.width - x),
            CHUNK_SIDE.min(self.height - y),
        )
    }

    /// Chunk index containing pixel `(x, y)`.
    pub fn chunk_at(&self, x: u32, y: u32) -> u64 {
        debug_assert!(x < self.width && y < self.height);
        let col = (x / CHUNK_SIDE) as u64;
        let row = (y / CHUNK_SIDE) as u64;
        row * self.chunk_cols() as u64 + col
    }

    /// Indices of all chunks intersecting `region` (clipped to the slide),
    /// in row-major order — the I/O set of a query.
    pub fn chunks_intersecting(&self, region: &Rect) -> Vec<u64> {
        let clipped = match region.intersect(&self.bounds()) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let c0 = clipped.x / CHUNK_SIDE;
        let c1 = (clipped.x1() - 1) / CHUNK_SIDE;
        let r0 = clipped.y / CHUNK_SIDE;
        let r1 = (clipped.y1() - 1) / CHUNK_SIDE;
        let cols = self.chunk_cols() as u64;
        let mut out = Vec::with_capacity(((r1 - r0 + 1) * (c1 - c0 + 1)) as usize);
        for r in r0..=r1 {
            for c in c0..=c1 {
                out.push(r as u64 * cols + c as u64);
            }
        }
        out
    }

    /// `qinputsize` for a region: total bytes of the chunks intersecting it
    /// (paper §4, SJF: "the total size of the data chunks that intersect
    /// the query window").
    pub fn input_bytes(&self, region: &Rect) -> u64 {
        self.chunks_intersecting(region).len() as u64 * PAGE_SIZE as u64
    }

    /// Byte offset of pixel `(x, y)` within its chunk's page (pixels are
    /// row-major within the chunk, 3 bytes each).
    pub fn offset_in_chunk(&self, x: u32, y: u32) -> usize {
        let chunk = self.chunk_rect(self.chunk_at(x, y));
        ((y - chunk.y) as usize * chunk.w as usize + (x - chunk.x) as usize)
            * BYTES_PER_PIXEL as usize
    }

    /// Ground-truth pixel value of the deterministic synthetic slide: what
    /// [`vmqs_storage::SyntheticSource`] stores for pixel `(x, y)`. Lets
    /// tests and examples verify full execution paths byte-for-byte.
    pub fn synthetic_pixel(&self, x: u32, y: u32) -> [u8; 3] {
        let page = self.chunk_at(x, y);
        let base = self.offset_in_chunk(x, y) as u64;
        [
            SyntheticSource::byte_at(self.id, page, base),
            SyntheticSource::byte_at(self.id, page, base + 1),
            SyntheticSource::byte_at(self.id, page, base + 2),
        ]
    }

    /// Reads one pixel through a [`DataSource`] (test/diagnostic helper —
    /// real execution goes through the Page Space Manager).
    pub fn read_pixel<D: DataSource>(
        &self,
        source: &D,
        x: u32,
        y: u32,
    ) -> std::io::Result<[u8; 3]> {
        let page = source.read_page(self.id, self.chunk_at(x, y), PAGE_SIZE)?;
        let off = self.offset_in_chunk(x, y);
        Ok([page[off], page[off + 1], page[off + 2]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 1000, 500)
    }

    #[test]
    fn chunk_grid_dimensions() {
        let s = slide();
        assert_eq!(s.chunk_cols(), 7); // ceil(1000/147)
        assert_eq!(s.chunk_rows(), 4); // ceil(500/147)
        assert_eq!(s.chunk_count(), 28);
        assert_eq!(s.stored_bytes(), 28 * 65536);
    }

    #[test]
    fn paper_scale_matches_evaluation_setup() {
        let s = SlideDataset::paper_scale(DatasetId(1));
        // 30000x30000 3-byte pixels = 2.7e9 bytes raw; ceil(30000/147)=205
        assert_eq!(s.chunk_cols(), 205);
        assert_eq!(s.chunk_count(), 205 * 205);
        // Three datasets ≈ 7.5 GB of storage, as in the paper.
        assert!(3 * s.stored_bytes() > 7_500_000_000);
        assert!(3 * s.stored_bytes() < 8_800_000_000);
    }

    #[test]
    fn chunk_rect_clips_at_edges() {
        let s = slide();
        let first = s.chunk_rect(0);
        assert_eq!(first, Rect::new(0, 0, 147, 147));
        // Last column clipped: 6*147 = 882, width 1000-882 = 118.
        let last_col = s.chunk_rect(6);
        assert_eq!(last_col, Rect::new(882, 0, 118, 147));
        // Last row clipped: 3*147 = 441, height 500-441 = 59.
        let last = s.chunk_rect(27);
        assert_eq!(last, Rect::new(882, 441, 118, 59));
    }

    #[test]
    fn chunk_at_inverts_chunk_rect() {
        let s = slide();
        for idx in [0u64, 5, 13, 27] {
            let r = s.chunk_rect(idx);
            assert_eq!(s.chunk_at(r.x, r.y), idx);
            assert_eq!(s.chunk_at(r.x1() - 1, r.y1() - 1), idx);
        }
    }

    #[test]
    fn chunks_intersecting_single_chunk() {
        let s = slide();
        assert_eq!(s.chunks_intersecting(&Rect::new(10, 10, 20, 20)), vec![0]);
    }

    #[test]
    fn chunks_intersecting_straddles_boundaries() {
        let s = slide();
        // Crosses the chunk boundary at x = 147.
        let ids = s.chunks_intersecting(&Rect::new(140, 0, 20, 20));
        assert_eq!(ids, vec![0, 1]);
        // 2x2 block of chunks.
        let ids = s.chunks_intersecting(&Rect::new(140, 140, 20, 20));
        assert_eq!(ids, vec![0, 1, 7, 8]);
    }

    #[test]
    fn chunks_intersecting_out_of_bounds_clips() {
        let s = slide();
        assert!(s
            .chunks_intersecting(&Rect::new(2000, 2000, 10, 10))
            .is_empty());
        // Region overhanging the right edge only touches last-column chunks.
        let ids = s.chunks_intersecting(&Rect::new(950, 0, 500, 10));
        assert_eq!(ids, vec![6]);
    }

    #[test]
    fn input_bytes_counts_whole_chunks() {
        let s = slide();
        assert_eq!(s.input_bytes(&Rect::new(0, 0, 1, 1)), 65536);
        assert_eq!(s.input_bytes(&Rect::new(140, 140, 20, 20)), 4 * 65536);
    }

    #[test]
    fn synthetic_pixel_matches_data_source() {
        let s = slide();
        let src = SyntheticSource::new();
        for &(x, y) in &[(0, 0), (146, 146), (147, 0), (999, 499), (500, 250)] {
            assert_eq!(
                s.synthetic_pixel(x, y),
                s.read_pixel(&src, x, y).unwrap(),
                "pixel ({x},{y})"
            );
        }
    }

    #[test]
    fn offset_in_chunk_row_major() {
        let s = slide();
        assert_eq!(s.offset_in_chunk(0, 0), 0);
        assert_eq!(s.offset_in_chunk(1, 0), 3);
        assert_eq!(s.offset_in_chunk(0, 1), 147 * 3);
        // In a clipped chunk, rows are the clipped width.
        assert_eq!(s.offset_in_chunk(882, 1), 118 * 3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_size_slide_rejected() {
        SlideDataset::new(DatasetId(0), 0, 10);
    }
}
