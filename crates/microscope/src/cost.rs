//! Calibrated CPU cost model for the discrete-event simulator.
//!
//! The paper reports whole-query CPU:I/O time ratios measured on its SMP:
//! ≈0.04–0.06 for the subsampling implementation (I/O-intensive) and ≈1:1
//! for pixel averaging (balanced). Those ratios are *inputs* to the
//! experiment design — they determine where the thread-scaling knee falls
//! (Fig. 4) — so the simulator uses a cost model calibrated to them rather
//! than measuring this machine's unrelated hardware.

use crate::query::VmOp;
use vmqs_storage::DiskModel;

/// Per-operation CPU costs in seconds per *input* byte scanned, plus the
/// cost of the `project` transformation per *output* byte produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VmCostModel {
    /// CPU seconds per input byte for subsampling.
    pub subsample_per_byte: f64,
    /// CPU seconds per input byte for pixel averaging.
    pub average_per_byte: f64,
    /// CPU seconds per reused output byte for `project` (a strided copy or
    /// small reduction — far cheaper than recomputation from raw chunks).
    pub project_per_byte: f64,
    /// Fixed per-query planning overhead in CPU seconds (index lookup,
    /// graph bookkeeping).
    pub planning_overhead: f64,
}

impl VmCostModel {
    /// Calibrates CPU rates against a disk model so the whole-query
    /// CPU:I/O ratios match the paper: `ratio ≈ cpu_time / io_time` with
    /// `io_time ≈ bytes / bandwidth` for large streaming reads.
    pub fn calibrated(disk: &DiskModel) -> Self {
        let seconds_per_byte_io = 1.0 / disk.bandwidth;
        VmCostModel {
            subsample_per_byte: 0.05 * seconds_per_byte_io,
            average_per_byte: 1.0 * seconds_per_byte_io,
            // Projection touches each reused output byte once at roughly
            // memory-copy speed; vanishingly cheap next to recomputation.
            project_per_byte: 0.01 * seconds_per_byte_io,
            planning_overhead: 1e-4,
        }
    }

    /// CPU seconds to process `input_bytes` of chunk data with `op`.
    pub fn compute_time(&self, op: VmOp, input_bytes: u64) -> f64 {
        let per = match op {
            VmOp::Subsample => self.subsample_per_byte,
            VmOp::Average => self.average_per_byte,
        };
        per * input_bytes as f64
    }

    /// CPU seconds to project `reused_output_bytes` from a cached result.
    pub fn project_time(&self, reused_output_bytes: u64) -> f64 {
        self.project_per_byte * reused_output_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_paper_ratios() {
        let disk = DiskModel::circa_2002();
        let m = VmCostModel::calibrated(&disk);
        let bytes = 100 * 65536u64;
        // Ignore seeks for the ratio check (streaming read).
        let io = bytes as f64 / disk.bandwidth;
        let cpu_sub = m.compute_time(VmOp::Subsample, bytes);
        let cpu_avg = m.compute_time(VmOp::Average, bytes);
        let r_sub = cpu_sub / io;
        let r_avg = cpu_avg / io;
        assert!(
            (0.04..=0.06).contains(&r_sub),
            "subsample ratio {r_sub} outside the paper's 0.04–0.06"
        );
        assert!(
            (0.9..=1.1).contains(&r_avg),
            "average ratio {r_avg} not ~1:1"
        );
    }

    #[test]
    fn projection_much_cheaper_than_recomputation() {
        let m = VmCostModel::calibrated(&DiskModel::circa_2002());
        let out_bytes = 3 * 1024 * 1024u64;
        // Reusing 3 MB of output must be far cheaper than recomputing it
        // from a 16x larger input scan.
        assert!(m.project_time(out_bytes) < 0.1 * m.compute_time(VmOp::Subsample, 16 * out_bytes));
    }
}
