//! Virtual Microscope query predicates.
//!
//! A VM query asks for a rectangular window of a slide rendered at a given
//! magnification level with one of two processing functions (paper §3):
//! **subsampling** (every Nth pixel) or **pixel averaging** (mean over N×N
//! windows). The predicate meta-information — slide, window, zoom, function
//! — is everything the scheduler and Data Store need; it implements
//! [`QuerySpec`] with the paper's overlap index (Eq. 4).

use crate::dataset::{SlideDataset, BYTES_PER_PIXEL};
use vmqs_core::{QuerySpec, Rect};

/// The processing function applied to retrieved chunks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VmOp {
    /// Return every Nth pixel of the window (I/O-intensive: CPU:I/O ≈
    /// 0.04–0.06 in the paper's measurements).
    Subsample,
    /// Average N×N input pixels per output pixel (balanced: CPU:I/O ≈ 1:1).
    Average,
}

impl VmOp {
    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            VmOp::Subsample => "subsample",
            VmOp::Average => "average",
        }
    }
}

/// A Virtual Microscope query predicate (the `M` of paper Eqs. 1–3).
///
/// Invariants established at construction: the window is clipped to the
/// slide, and its origin and size are aligned to the zoom factor. Alignment
/// guarantees that sample points (subsampling) and averaging blocks of any
/// query at zoom `k·z` coincide with those of a cached result at zoom `z`,
/// making the `project` transformation exact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VmQuery {
    /// The slide being browsed.
    pub slide: SlideDataset,
    /// Query window at base magnification, zoom-aligned.
    pub region: Rect,
    /// Magnification denominator `N` (1 = full resolution).
    pub zoom: u32,
    /// Processing function.
    pub op: VmOp,
}

impl VmQuery {
    /// Creates a query, clipping `region` to the slide and snapping it to
    /// zoom alignment. Panics if the aligned window is empty or `zoom == 0`.
    pub fn new(slide: SlideDataset, region: Rect, zoom: u32, op: VmOp) -> Self {
        assert!(zoom >= 1, "zoom must be >= 1");
        let clipped = region
            .intersect(&slide.bounds())
            .expect("query window outside slide");
        let x = clipped.x - clipped.x % zoom;
        let y = clipped.y - clipped.y % zoom;
        let w = (clipped.x1() - x) / zoom * zoom;
        let h = (clipped.y1() - y) / zoom * zoom;
        assert!(w > 0 && h > 0, "query window empty after zoom alignment");
        VmQuery {
            slide,
            region: Rect::new(x, y, w, h),
            zoom,
            op,
        }
    }

    /// Output image dimensions `(width, height)` in pixels.
    pub fn output_dims(&self) -> (u32, u32) {
        (self.region.w / self.zoom, self.region.h / self.zoom)
    }

    /// True when a cached result for `self` can contribute to `other`: same
    /// slide, same processing function, and `other`'s zoom a multiple of
    /// `self`'s (the transformation is not invertible in the other
    /// direction — paper §4, Fig. 3).
    pub fn can_project_to(&self, other: &VmQuery) -> bool {
        self.slide.id == other.slide.id
            && self.op == other.op
            && other.zoom.is_multiple_of(self.zoom)
    }

    /// The portion of `target`'s window that a cached `self` result covers,
    /// snapped inward to `target`'s zoom grid so it corresponds to whole
    /// output pixels. `None` when incompatible or empty after snapping.
    pub fn aligned_coverage(&self, target: &VmQuery) -> Option<Rect> {
        if !self.can_project_to(target) {
            return None;
        }
        let inter = self.region.intersect(&target.region)?;
        let z = target.zoom;
        let x0 = inter.x.div_ceil(z) * z;
        let y0 = inter.y.div_ceil(z) * z;
        let x1 = inter.x1() / z * z;
        let y1 = inter.y1() / z * z;
        if x0 < x1 && y0 < y1 {
            Some(Rect::from_edges(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Sub-queries for the uncovered remainder of this query's window after
    /// `covered` (zoom-aligned) pieces are answered from cache (paper §2:
    /// "sub-queries are created to compute the results for the portions of
    /// the query that have not been computed from cached results").
    pub fn subqueries_for_remainder(&self, covered: &[Rect]) -> Vec<VmQuery> {
        vmqs_core::geom::subtract_all(&self.region, covered)
            .into_iter()
            .filter(|r| r.w >= self.zoom && r.h >= self.zoom)
            .map(|r| VmQuery::new(self.slide, r, self.zoom, self.op))
            .collect()
    }
}

impl vmqs_core::SpatialSpec for VmQuery {
    fn region_key(&self) -> (vmqs_core::DatasetId, Rect) {
        (self.slide.id, self.region)
    }
}

impl QuerySpec for VmQuery {
    fn cmp(&self, other: &Self) -> bool {
        self.slide.id == other.slide.id
            && self.op == other.op
            && self.zoom == other.zoom
            && self.region == other.region
    }

    /// The paper's Eq. 4: `overlap = (I_A / O_A) · (I_S / O_S)` where `I_A`
    /// is the intersection area, `O_A` the query-window area, `I_S` the
    /// cached result's zoom, and `O_S` the querying zoom; zero when `O_S`
    /// is not a multiple of `I_S` or the functions differ.
    fn overlap(&self, other: &Self) -> f64 {
        if !self.can_project_to(other) {
            return 0.0;
        }
        let inter = self.region.intersection_area(&other.region);
        if inter == 0 {
            return 0.0;
        }
        (inter as f64 / other.region.area() as f64) * (self.zoom as f64 / other.zoom as f64)
    }

    fn qoutsize(&self) -> u64 {
        let (w, h) = self.output_dims();
        w as u64 * h as u64 * BYTES_PER_PIXEL as u64
    }

    fn qinputsize(&self) -> u64 {
        self.slide.input_bytes(&self.region)
    }

    /// The query's I/O set: the slide chunks intersecting the window, with
    /// the dataset id folded into the high bits so chunk keys never collide
    /// across slides. Independent of `zoom` and `op` — two queries with
    /// disjoint outputs (no reuse edge) can still share all their chunks,
    /// which is what ChunkBatch exploits.
    fn chunk_keys(&self) -> Vec<u64> {
        self.slide
            .chunks_intersecting(&self.region)
            .into_iter()
            .map(|c| (self.slide.id.0 << 32) | c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmqs_core::DatasetId;

    fn slide() -> SlideDataset {
        SlideDataset::new(DatasetId(0), 4096, 4096)
    }

    fn q(x: u32, y: u32, w: u32, h: u32, zoom: u32, op: VmOp) -> VmQuery {
        VmQuery::new(slide(), Rect::new(x, y, w, h), zoom, op)
    }

    #[test]
    fn constructor_aligns_window_to_zoom() {
        let v = q(13, 7, 100, 50, 4, VmOp::Subsample);
        assert_eq!(v.region, Rect::new(12, 4, 100, 52));
        assert_eq!(v.region.x % 4, 0);
        assert_eq!(v.region.w % 4, 0);
        assert_eq!(v.output_dims(), (25, 13));
    }

    #[test]
    fn constructor_clips_to_slide() {
        let v = q(4000, 4000, 500, 500, 1, VmOp::Average);
        assert_eq!(v.region, Rect::new(4000, 4000, 96, 96));
    }

    #[test]
    #[should_panic(expected = "outside slide")]
    fn fully_outside_window_panics() {
        q(5000, 5000, 10, 10, 1, VmOp::Subsample);
    }

    #[test]
    #[should_panic(expected = "zoom")]
    fn zero_zoom_rejected() {
        q(0, 0, 10, 10, 0, VmOp::Subsample);
    }

    #[test]
    fn qoutsize_is_rgb_output_bytes() {
        let v = q(0, 0, 1024, 1024, 1, VmOp::Subsample);
        assert_eq!(v.qoutsize(), 1024 * 1024 * 3);
        // Paper workload: 1024×1024 RGB at zoom 4 covers a 4096-wide window.
        let v4 = q(0, 0, 4096, 4096, 4, VmOp::Average);
        assert_eq!(v4.qoutsize(), 1024 * 1024 * 3); // 3 MB, as in §5
    }

    #[test]
    fn qinputsize_counts_intersecting_chunks() {
        let v = q(0, 0, 147, 147, 1, VmOp::Subsample);
        assert_eq!(v.qinputsize(), 65536);
        let v2 = q(0, 0, 294, 294, 1, VmOp::Subsample);
        assert_eq!(v2.qinputsize(), 4 * 65536);
    }

    #[test]
    fn cmp_requires_full_equality() {
        let a = q(0, 0, 100, 100, 2, VmOp::Subsample);
        assert!(a.cmp(&a.clone()));
        assert!(!a.cmp(&q(0, 0, 100, 100, 2, VmOp::Average)));
        assert!(!a.cmp(&q(0, 0, 100, 102, 2, VmOp::Subsample)));
        assert!(!a.cmp(&q(0, 0, 100, 100, 4, VmOp::Subsample)));
    }

    #[test]
    fn overlap_eq4_area_and_zoom_ratio() {
        // Cached: zoom 2 over [0,0,200,200]; query: zoom 4 over [100,100,200,200].
        let cached = q(0, 0, 200, 200, 2, VmOp::Subsample);
        let query = q(100, 100, 200, 200, 4, VmOp::Subsample);
        // I_A = 100*100, O_A = 200*200 → area ratio 0.25; I_S/O_S = 0.5.
        assert!((cached.overlap(&query) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn overlap_zero_for_incompatible() {
        let fine = q(0, 0, 100, 100, 2, VmOp::Subsample);
        let coarse = q(0, 0, 100, 100, 4, VmOp::Subsample);
        // Coarse cannot serve fine.
        assert_eq!(coarse.overlap(&fine), 0.0);
        // Different op.
        let avg = q(0, 0, 100, 100, 2, VmOp::Average);
        assert_eq!(fine.overlap(&avg), 0.0);
        // Non-multiple zoom (2 -> 3).
        let z3 = q(0, 0, 99, 99, 3, VmOp::Subsample);
        assert_eq!(fine.overlap(&z3), 0.0);
        // Disjoint windows.
        let far = q(2000, 2000, 100, 100, 2, VmOp::Subsample);
        assert_eq!(fine.overlap(&far), 0.0);
    }

    #[test]
    fn overlap_identical_is_one() {
        let a = q(10, 10, 500, 500, 2, VmOp::Average);
        assert!((a.overlap(&a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_zero_for_different_slides() {
        let a = q(0, 0, 100, 100, 1, VmOp::Subsample);
        let other = VmQuery::new(
            SlideDataset::new(DatasetId(7), 4096, 4096),
            Rect::new(0, 0, 100, 100),
            1,
            VmOp::Subsample,
        );
        assert_eq!(a.overlap(&other), 0.0);
    }

    #[test]
    fn aligned_coverage_snaps_to_target_grid() {
        let cached = q(0, 0, 200, 200, 1, VmOp::Subsample);
        let target = q(100, 100, 200, 200, 4, VmOp::Subsample);
        // Intersection is [100,100,100,100]; already 4-aligned.
        assert_eq!(
            cached.aligned_coverage(&target),
            Some(Rect::new(100, 100, 100, 100))
        );
        // A cached window whose edge is not 4-aligned gets snapped inward.
        let cached2 = q(0, 0, 150, 200, 2, VmOp::Subsample);
        let cov = cached2.aligned_coverage(&target).unwrap();
        assert_eq!(cov, Rect::from_edges(100, 100, 148, 200));
    }

    #[test]
    fn aligned_coverage_none_when_incompatible_or_tiny() {
        let cached = q(0, 0, 100, 100, 4, VmOp::Subsample);
        let fine = q(0, 0, 100, 100, 2, VmOp::Subsample);
        assert_eq!(cached.aligned_coverage(&fine), None);
        // Sliver thinner than one target pixel.
        let cached2 = q(0, 0, 100, 2, 1, VmOp::Subsample);
        let target = q(0, 0, 100, 100, 4, VmOp::Subsample);
        assert_eq!(cached2.aligned_coverage(&target), None);
    }

    #[test]
    fn subqueries_cover_exact_remainder() {
        let target = q(0, 0, 400, 400, 4, VmOp::Average);
        let covered = vec![Rect::new(0, 0, 400, 200)];
        let subs = target.subqueries_for_remainder(&covered);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].region, Rect::new(0, 200, 400, 200));
        assert_eq!(subs[0].zoom, 4);
        assert_eq!(subs[0].op, VmOp::Average);
    }

    #[test]
    fn subqueries_empty_when_fully_covered() {
        let target = q(0, 0, 400, 400, 4, VmOp::Average);
        assert!(target
            .subqueries_for_remainder(&[Rect::new(0, 0, 400, 400)])
            .is_empty());
    }

    #[test]
    fn chunk_keys_follow_io_set_and_separate_datasets() {
        let a = q(0, 0, 147, 147, 1, VmOp::Subsample);
        assert_eq!(a.chunk_keys().len(), 1);
        // Same chunks regardless of op/zoom (different outputs, same I/O).
        let b = q(0, 0, 148, 148, 4, VmOp::Average);
        assert_eq!(b.chunk_keys().len(), 4);
        assert_eq!(a.chunk_keys()[0], b.chunk_keys()[0]);
        // Different dataset → disjoint keys for the same window.
        let other = VmQuery::new(
            SlideDataset::new(DatasetId(7), 4096, 4096),
            Rect::new(0, 0, 147, 147),
            1,
            VmOp::Subsample,
        );
        assert_ne!(a.chunk_keys()[0], other.chunk_keys()[0]);
    }

    #[test]
    fn reuse_bytes_consistent_with_overlap() {
        let cached = q(0, 0, 1024, 1024, 1, VmOp::Subsample);
        let query = q(512, 0, 1024, 1024, 1, VmOp::Subsample);
        let expected = (cached.overlap(&query) * cached.qoutsize() as f64).round() as u64;
        assert_eq!(cached.reuse_bytes(&query), expected);
        assert!(expected > 0);
    }
}
